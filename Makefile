# Developer/CI entry points. `make ci` is the gate: vet (with the
# detlint analyzers wired in as a vettool), build, the determinism lint
# sweep, the full test suite under the race detector, the allocation
# gate for the simulation hot paths (run without -race, which would
# perturb the counts), a short hot-path benchmark smoke so ns/op
# regressions fail fast, and a one-iteration benchmark pass (which also
# regenerates the paper's tables and figures once and exercises the
# attack and architecture-fingerprinting and topology-recovery stages at
# both worker counts via BenchmarkAttackStage, BenchmarkArchIDStage and
# BenchmarkTopoStage).

GO ?= go

# PR number stamped into the benchmark trajectory snapshot.
BENCH_PR ?= 9
BENCH_JSON ?= BENCH_PR$(BENCH_PR).json
# Key micro/campaign benches tracked across PRs.
BENCH_KEY = BenchmarkClassifyMNIST$$|BenchmarkClassifyBatch|BenchmarkCacheAccess$$|BenchmarkEngineLoadHot$$|BenchmarkEngineLoadRange$$|BenchmarkBranchPredict$$|BenchmarkPMUMeasure$$|BenchmarkAttackStage|BenchmarkArchIDStage|BenchmarkTopoStage|BenchmarkMonitorStream

.PHONY: all build vet lint test race bench bench-json allocgate benchsmoke fabricsmoke batchsmoke streamsmoke obssmoke ci golden

all: build

build:
	$(GO) build ./...

# DETLINT is where the vettool binary is staged for `make vet`.
DETLINT := $(shell mktemp -u)/detlint

# vet runs the standard suite plus the repo's own analyzers through the
# go vet tool protocol, so editors and CI share one diagnostic stream.
vet:
	$(GO) vet ./...
	@mkdir -p $(dir $(DETLINT))
	$(GO) build -o $(DETLINT) ./cmd/detlint
	$(GO) vet -vettool=$(DETLINT) ./...
	@rm -rf $(dir $(DETLINT))

# lint runs the determinism analyzer suite standalone (faster iteration
# than the vet protocol; same findings).
lint:
	$(GO) run ./cmd/detlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

# Snapshot the key benches into the perf trajectory file for this PR.
# Commit the result so the trajectory BENCH_*.json series stays populated.
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_KEY)' -benchmem -benchtime=2s . \
		| $(GO) run ./cmd/benchjson -pr $(BENCH_PR) > $(BENCH_JSON)
	@echo "wrote $(BENCH_JSON)"

# Allocation gate: the hot paths (Hierarchy.Access, Engine.Load on a
# cached line, PMU.MeasureOnceInto steady state, the stream stage's
# window emission, and the nil-Recorder telemetry hooks) must stay at
# 0 allocs/op.
allocgate:
	$(GO) test -run 'ZeroAlloc' ./internal/march/... ./internal/hpc ./internal/pipeline ./internal/obs

# Fast hot-path smoke: catches order-of-magnitude regressions in seconds.
benchsmoke:
	$(GO) test -run '^$$' -bench 'BenchmarkCacheAccess$$|BenchmarkClassifyMNIST$$' -benchtime=100x .

# Multi-process determinism smoke for the distributed audit fabric: the
# same campaign is run through the CLI at -processes 1 and -processes 2
# and the raw distribution CSVs must be byte-identical. (The fabric's
# full fault-injection suite runs under -race as part of `race`.)
fabricsmoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf '"$$tmp" EXIT; \
	$(GO) build -o $$tmp/shardworker ./cmd/shardworker; \
	$(GO) run ./cmd/evaluate -dataset mnist -classes 1,2 -runs 30 -workers 2 -seed 17 \
		-processes 1 -worker-bin $$tmp/shardworker -csv $$tmp/p1.csv >/dev/null; \
	$(GO) run ./cmd/evaluate -dataset mnist -classes 1,2 -runs 30 -workers 2 -seed 17 \
		-processes 2 -worker-bin $$tmp/shardworker -csv $$tmp/p2.csv >/dev/null; \
	cmp $$tmp/p1.csv $$tmp/p2.csv; \
	echo "fabricsmoke: processes=1 and processes=2 distributions are byte-identical"

# Batched-collection determinism smoke: the same campaign is run through
# the CLI at -batch 1 and -batch 8 and the raw distribution CSVs must be
# byte-identical — per-input counter attribution inside a batched replay
# session is exact, so batch size may change wall-clock only.
batchsmoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf '"$$tmp" EXIT; \
	$(GO) run ./cmd/evaluate -dataset mnist -classes 1,2 -runs 30 -workers 2 -seed 17 \
		-batch 1 -csv $$tmp/b1.csv >/dev/null; \
	$(GO) run ./cmd/evaluate -dataset mnist -classes 1,2 -runs 30 -workers 2 -seed 17 \
		-batch 8 -csv $$tmp/b8.csv >/dev/null; \
	cmp $$tmp/b1.csv $$tmp/b8.csv; \
	echo "batchsmoke: batch=1 and batch=8 distributions are byte-identical"

# Streaming-monitor determinism smoke: the same campaign is run through
# cmd/monitor to exhaustion (-no-stop) and through cmd/evaluate, and the
# raw distribution CSVs must be byte-identical — the stream seam
# reorders nothing and loses nothing.
streamsmoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf '"$$tmp" EXIT; \
	$(GO) run ./cmd/evaluate -dataset mnist -classes 1,2 -runs 30 -workers 2 -seed 17 \
		-csv $$tmp/batch.csv >/dev/null; \
	$(GO) run ./cmd/monitor -dataset mnist -classes 1,2 -budget 30 -workers 2 -seed 17 \
		-no-stop -csv $$tmp/stream.csv >/dev/null; \
	cmp $$tmp/batch.csv $$tmp/stream.csv; \
	echo "streamsmoke: streamed-to-exhaustion and batch distributions are byte-identical"

# Telemetry smoke: a fully-traced multi-process campaign must emit a
# schema-valid Chrome trace while leaving the distribution CSV
# byte-identical to the untraced run — telemetry is observational
# output only, never an input.
obssmoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf '"$$tmp" EXIT; \
	$(GO) build -o $$tmp/shardworker ./cmd/shardworker; \
	$(GO) build -o $$tmp/obsview ./cmd/obsview; \
	$(GO) run ./cmd/evaluate -dataset mnist -classes 1,2 -runs 30 -workers 2 -seed 17 \
		-processes 2 -worker-bin $$tmp/shardworker -csv $$tmp/plain.csv >/dev/null; \
	$(GO) run ./cmd/evaluate -dataset mnist -classes 1,2 -runs 30 -workers 2 -seed 17 \
		-processes 2 -worker-bin $$tmp/shardworker -csv $$tmp/traced.csv \
		-trace $$tmp/campaign.trace -obs $$tmp/campaign.jsonl >/dev/null; \
	cmp $$tmp/plain.csv $$tmp/traced.csv; \
	$$tmp/obsview -check $$tmp/campaign.trace; \
	test -s $$tmp/campaign.jsonl; \
	echo "obssmoke: traced and untraced distributions are byte-identical; trace is schema-valid"

# Regenerate all four golden reports (end-to-end evaluation, attack
# stage, architecture fingerprinting, topology recovery) after a
# *deliberate* behavior change (review the diff before committing it).
golden:
	$(GO) test -run 'TestGoldenReport|TestAttackGoldenReport|TestArchIDGoldenReport|TestTopoGoldenReport|TestGoldenMonitor' -update .

ci: vet build lint race allocgate benchsmoke fabricsmoke batchsmoke streamsmoke obssmoke bench
