# Developer/CI entry points. `make ci` is the gate: vet, build, the full
# test suite under the race detector, and a one-iteration benchmark smoke
# pass (which also regenerates the paper's tables and figures once and
# exercises the attack stage at both worker counts via
# BenchmarkAttackStage).

GO ?= go

.PHONY: all build vet test race bench ci golden

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

# Regenerate the golden end-to-end evaluation and attack reports after a
# *deliberate* behavior change (review the diff before committing it).
golden:
	$(GO) test -run 'TestGoldenReport|TestAttackGoldenReport' -update .

ci: vet build race bench
