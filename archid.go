package repro

// The architecture-fingerprinting stage: the scenario where the secret is
// the *model*, not the input. The adversary of CSI-NN (Batina et al.)
// first asks which architecture is deployed at all; this stage answers
// how well the HPC side channel lets them — a model zoo of candidate
// architectures is deployed one per class label on the sharded pipeline,
// and the same template/kNN attackers that recover input categories
// recover the architecture id instead. It is the first scenario where the
// defense levels are scored on a different secret: per-kernel constant
// time alone does NOT help (each architecture's fixed footprint is its
// fingerprint), so the constant-time deployment additionally pads to the
// zoo-wide footprint envelope (see internal/archid).

import (
	"context"
	"fmt"

	"repro/internal/archid"
	"repro/internal/hpc"
	"repro/internal/nn"
	"repro/internal/obs"
)

// ArchIDResult is the fingerprinting stage's output: attacker confusion
// matrices over architecture labels, zoo metadata and layer evidence.
type ArchIDResult = archid.Result

// ArchIDConfig controls an architecture-fingerprinting campaign. The zero
// value profiles 40 and attacks 20 classifications per architecture with
// the paper's base events over the scenario's default zoo.
type ArchIDConfig struct {
	Events []Event
	// ProfileRuns / AttackRuns are the adversary's per-architecture
	// profiling and held-out scoring budgets; defaults 40 / 20.
	ProfileRuns, AttackRuns int
	// K is the kNN neighbourhood size; default 5.
	K int
	// Workers is the pipeline worker count; 0 → GOMAXPROCS.
	Workers int
	// Seed is the campaign root seed; 0 uses the scenario seed. Weight
	// construction and observations derive from it in domains disjoint
	// from the evaluation and input-recovery attack stages.
	Seed int64
	// ShardRuns bounds measured runs per shard; 0 uses the pipeline
	// default.
	ShardRuns int
	// MaxInputs caps the shared input pool taken from the scenario's test
	// split; 0 uses every test image.
	MaxInputs int
	// NoPad disables the constant-time envelope padding (ablation).
	NoPad bool
	// Processes distributes shard execution over that many shardworker OS
	// processes through the distributed audit fabric; 0 keeps execution
	// in-process. Results are byte-identical either way.
	Processes int
	// Fabric configures the fabric when Processes ≥ 1.
	Fabric FabricConfig
	// Obs, when non-nil, records campaign telemetry. Observational
	// output only — results are byte-identical with or without it.
	Obs *obs.Recorder
}

// ArchZoo returns the scenario's candidate-architecture hypothesis space:
// the default zoo over the scenario's input shape and class count.
func (s *Scenario) ArchZoo() (*nn.Zoo, error) {
	return nn.DefaultZoo(s.Arch.InH, s.Arch.InW, s.Arch.InC, s.Arch.Classes)
}

// ArchID runs the fingerprinting stage against the scenario's zoo at its
// configured defense level.
func (s *Scenario) ArchID(ctx context.Context, cfg ArchIDConfig) (*ArchIDResult, error) {
	return s.ArchIDGrouped(ctx, s.Config.Defense, cfg)
}

// ArchIDGrouped runs the fingerprinting stage at an explicit defense level
// over an arbitrarily wide event list. Event sets wider than the HPC
// register file are split into register-sized groups, each collected as
// its own pipeline session against the *same* deterministic zoo victims
// (weights derive from the root seed alone; only the observation seeds
// differ per session), and the per-run profiles are joined per
// (architecture, run). Results are bit-identical at any worker count.
func (s *Scenario) ArchIDGrouped(ctx context.Context, level DefenseLevel, cfg ArchIDConfig) (*ArchIDResult, error) {
	zoo, err := s.ArchZoo()
	if err != nil {
		return nil, err
	}
	inputs := s.Test.Inputs()
	if cfg.MaxInputs > 0 && cfg.MaxInputs < len(inputs) {
		inputs = inputs[:cfg.MaxInputs]
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = s.Config.Seed
	}
	events := cfg.Events
	if len(events) == 0 {
		events = []Event{EvCacheMisses, EvBranches}
	}
	camp, err := archid.NewCampaign(archid.Config{
		Name:           fmt.Sprintf("%s-archid/%s", s.Config.Dataset, level),
		Zoo:            zoo,
		Inputs:         inputs,
		Level:          level,
		ProfileRuns:    cfg.ProfileRuns,
		AttackRuns:     cfg.AttackRuns,
		K:              cfg.K,
		Workers:        cfg.Workers,
		Seed:           seed,
		ShardRuns:      cfg.ShardRuns,
		DisableRuntime: s.Config.DisableRuntime,
		DisableNoise:   s.Config.DisableNoise,
		NoPad:          cfg.NoPad,
		Obs:            cfg.Obs,
	})
	if err != nil {
		return nil, err
	}

	// One collection session per register-sized event group against the
	// campaign's shared victims (one group in the common case); profiles
	// of the same (architecture, run) are joined across sessions into one
	// feature vector.
	byArch := map[int][]hpc.Profile{}
	for g := 0; g*hpc.DefaultCounters < len(events); g++ {
		lo := g * hpc.DefaultCounters
		hi := lo + hpc.DefaultCounters
		if hi > len(events) {
			hi = len(events)
		}
		var part map[int][]hpc.Profile
		if cfg.Processes > 0 {
			p, _, err := camp.SessionExecutor(events[lo:hi], g)
			if err != nil {
				return nil, err
			}
			spec := WorkerSpec{
				Stage:       StageArchID,
				Scenario:    s.spec(),
				Level:       level.String(),
				Events:      eventNames(events[lo:hi]),
				Session:     g,
				Seed:        seed,
				ProfileRuns: cfg.ProfileRuns,
				AttackRuns:  cfg.AttackRuns,
				MaxInputs:   cfg.MaxInputs,
				NoPad:       cfg.NoPad,
				ShardRuns:   cfg.ShardRuns,
			}
			part, err = collectFabric(ctx, p, camp.Pools(), spec, cfg.Processes, cfg.Fabric)
			if err != nil {
				return nil, err
			}
		} else {
			var err error
			part, err = camp.Collect(ctx, events[lo:hi], g)
			if err != nil {
				return nil, err
			}
		}
		joinProfiles(byArch, part)
	}
	return camp.Score(events, byArch)
}

// joinProfiles merges one collection session's labelled profiles into the
// accumulated per-(class, run) feature vectors — the multi-session join
// both the attack and archid wide-event paths perform. Sessions of one
// campaign always produce the same classes and run counts (same pools,
// same RunsPerClass), so the positional merge is total.
func joinProfiles(dst, part map[int][]hpc.Profile) {
	for cls, profs := range part {
		if dst[cls] == nil {
			dst[cls] = profs
			continue
		}
		for r, prof := range profs {
			for e, v := range prof {
				dst[cls][r][e] = v
			}
		}
	}
}
