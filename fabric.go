package repro

// The repro side of the distributed audit fabric (internal/fabric): the
// campaign spec that crosses the process boundary, the worker-side
// runner construction, and the coordinator-side collection helper every
// stage shares.
//
// The spec is deliberately tiny — dataset, seeds and budgets, never
// data. A shardworker process rebuilds the entire campaign (synthetic
// dataset, trained network, victims, envelope) from the spec alone;
// because every construction step is seeded, the rebuilt state is
// bit-identical to the coordinator's, and a shard measured in another
// process returns the exact bytes the in-process pipeline would have
// produced. That is the whole determinism argument: processes=N only
// changes *where* shards run, never *what* they observe.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/archid"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/hpc"
	"repro/internal/march"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/tensor"
	"repro/internal/topo"
)

// FabricConfig configures the distributed audit fabric for campaigns
// with Processes ≥ 1.
type FabricConfig struct {
	// WorkerBin is the shardworker binary to launch; "" falls back to the
	// REPRO_SHARDWORKER environment variable.
	WorkerBin string
	// Journal is the base path of the shard-completion journal; each
	// collection session appends ".<stage>.g<session>". "" disables
	// journaling (campaigns are not resumable after a crash).
	Journal string
	// TCP dispatches shards over loopback TCP connections instead of the
	// default stdin/stdout pipes.
	TCP bool
	// Env adds environment variables to every worker process (the
	// fault-injection hooks in tests).
	Env []string
}

func (fc FabricConfig) workerBin() (string, error) {
	if fc.WorkerBin != "" {
		return fc.WorkerBin, nil
	}
	if bin := os.Getenv("REPRO_SHARDWORKER"); bin != "" {
		return bin, nil
	}
	return "", fmt.Errorf("repro: the fabric needs a shardworker binary (FabricConfig.WorkerBin or $REPRO_SHARDWORKER)")
}

// ScenarioSpec is the wire form of ScenarioConfig: everything a worker
// process needs to rebuild the scenario — dataset generation, training
// and deployment are all seeded, so the rebuild is bit-identical.
type ScenarioSpec struct {
	Dataset        Dataset `json:"dataset"`
	Seed           int64   `json:"seed"`
	PerClassTrain  int     `json:"per_class_train"`
	PerClassTest   int     `json:"per_class_test"`
	Epochs         int     `json:"epochs"`
	LR             float64 `json:"lr,omitempty"`
	Defense        string  `json:"defense"`
	DisableRuntime bool    `json:"disable_runtime,omitempty"`
	DisableNoise   bool    `json:"disable_noise,omitempty"`
}

// spec captures the scenario's rebuild recipe.
func (s *Scenario) spec() ScenarioSpec {
	c := s.Config
	return ScenarioSpec{
		Dataset:        c.Dataset,
		Seed:           c.Seed,
		PerClassTrain:  c.PerClassTrain,
		PerClassTest:   c.PerClassTest,
		Epochs:         c.Epochs,
		LR:             c.LR,
		Defense:        c.Defense.String(),
		DisableRuntime: c.DisableRuntime,
		DisableNoise:   c.DisableNoise,
	}
}

func (sp ScenarioSpec) config() (ScenarioConfig, error) {
	level, err := ParseDefense(sp.Defense)
	if err != nil {
		return ScenarioConfig{}, err
	}
	return ScenarioConfig{
		Dataset:        sp.Dataset,
		Seed:           sp.Seed,
		PerClassTrain:  sp.PerClassTrain,
		PerClassTest:   sp.PerClassTest,
		Epochs:         sp.Epochs,
		LR:             sp.LR,
		Defense:        level,
		DisableRuntime: sp.DisableRuntime,
		DisableNoise:   sp.DisableNoise,
	}, nil
}

// Fabric stage names, the WorkerSpec.Stage values. Report and attack
// collections execute identically on a worker (a scenario-target
// pipeline session); the distinct names keep their journals and
// campaign digests apart.
const (
	StageReport  = "report"
	StageAttack  = "attack"
	StageArchID  = "archid"
	StageTopo    = "topo"
	StageMonitor = "monitor"
)

// WorkerSpec is the opaque campaign spec a coordinator sends in the init
// frame: one collection session, fully self-contained. Its canonical
// JSON encoding doubles as the campaign identity — fabric.CampaignDigest
// of these bytes binds the session's journal.
type WorkerSpec struct {
	// Proto pins the spec layout; mismatches fail before any collection.
	Proto string `json:"proto"`
	// Stage selects the campaign kind (Stage* constants).
	Stage string `json:"stage"`
	// Scenario rebuilds the case study on the worker.
	Scenario ScenarioSpec `json:"scenario"`
	// Level is the deployment hardening of this session's victims (sweeps
	// evaluate levels other than the scenario's own).
	Level string `json:"level"`
	// Events are this session's monitored counters (≤ one register group).
	Events []string `json:"events"`
	// Session is the register-group index within a wide-event campaign.
	Session int `json:"session"`

	// Report/attack sessions: input classes, run budget and the session's
	// already-derived pipeline root seed. Batch is the measured-batch size
	// (core.Config.Batch) — attribution is exact at any value, but it is
	// part of the spec so the campaign digest records how the session was
	// executed.
	Classes      []int `json:"classes,omitempty"`
	RunsPerClass int   `json:"runs_per_class,omitempty"`
	RootSeed     int64 `json:"root_seed,omitempty"`
	Batch        int   `json:"batch,omitempty"`

	// Monitor sessions: tenant count (≥ 2 co-locates a second classifier
	// on every shard engine, interleaved at Quantum instructions).
	Tenants int `json:"tenants,omitempty"`

	// ArchID/topo sessions: the campaign root seed (victim weights derive
	// from it) and the stage budgets.
	Seed        int64  `json:"campaign_seed,omitempty"`
	ProfileRuns int    `json:"profile_runs,omitempty"`
	AttackRuns  int    `json:"attack_runs,omitempty"`
	MaxInputs   int    `json:"max_inputs,omitempty"`
	NoPad       bool   `json:"no_pad,omitempty"`
	TrainZoo    int    `json:"train_zoo,omitempty"`
	Holdout     int    `json:"holdout,omitempty"`
	Runs        int    `json:"runs,omitempty"`
	Quantum     uint64 `json:"quantum,omitempty"`

	// ShardRuns bounds measured runs per shard (must match the
	// coordinator's plan).
	ShardRuns int `json:"shard_runs,omitempty"`
}

// specProto is the WorkerSpec layout version, checked independently of
// the frame protocol so a spec-layout drift between binaries also fails
// loudly.
const specProto = "repro-fabric-1"

func eventNames(events []march.Event) []string {
	names := make([]string, len(events))
	for i, e := range events {
		names[i] = e.String()
	}
	return names
}

func parseEventNames(names []string) ([]march.Event, error) {
	events := make([]march.Event, len(names))
	for i, n := range names {
		e, err := march.ParseEvent(n)
		if err != nil {
			return nil, err
		}
		events[i] = e
	}
	return events, nil
}

// NewWorkerRunner is the fabric.BuildRunner of cmd/shardworker: it
// decodes a WorkerSpec and rebuilds that session's campaign state —
// scenario, victims, pipeline — returning the plan executor the serve
// loop answers shard frames with.
func NewWorkerRunner(ctx context.Context, raw []byte) (fabric.Runner, error) {
	var spec WorkerSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return nil, fmt.Errorf("repro: decoding worker spec: %w", err)
	}
	if spec.Proto != specProto {
		return nil, fmt.Errorf("repro: worker spec proto %q, want %q — coordinator and shardworker binaries are out of sync", spec.Proto, specProto)
	}
	events, err := parseEventNames(spec.Events)
	if err != nil {
		return nil, err
	}
	level, err := ParseDefense(spec.Level)
	if err != nil {
		return nil, err
	}
	scfg, err := spec.Scenario.config()
	if err != nil {
		return nil, err
	}
	s, err := NewScenario(scfg)
	if err != nil {
		return nil, fmt.Errorf("repro: rebuilding scenario: %w", err)
	}
	inputs := s.Test.Inputs()
	if spec.MaxInputs > 0 && spec.MaxInputs < len(inputs) {
		inputs = inputs[:spec.MaxInputs]
	}

	switch spec.Stage {
	case StageReport, StageAttack, StageMonitor:
		ev, err := core.NewEvaluator(core.Config{
			Events:       events,
			RunsPerClass: spec.RunsPerClass,
			Batch:        spec.Batch,
		})
		if err != nil {
			return nil, err
		}
		p, err := pipeline.New(ev, pipeline.Config{
			Workers:   1,
			RootSeed:  spec.RootSeed,
			ShardRuns: spec.ShardRuns,
		})
		if err != nil {
			return nil, err
		}
		pools, err := s.ClassPools(spec.Classes...)
		if err != nil {
			return nil, err
		}
		factory := s.FactoryFor(level)
		if spec.Stage == StageMonitor && spec.Tenants >= 2 {
			factory = s.monitorFactory(level, spec.Tenants, spec.Quantum)
		}
		return p.Executor(func(_ int, seed int64) (core.Target, error) {
			return factory(seed)
		}, pools)
	case StageArchID:
		zoo, err := s.ArchZoo()
		if err != nil {
			return nil, err
		}
		camp, err := archid.NewCampaign(archid.Config{
			Zoo:            zoo,
			Inputs:         inputs,
			Level:          level,
			ProfileRuns:    spec.ProfileRuns,
			AttackRuns:     spec.AttackRuns,
			Workers:        1,
			Seed:           spec.Seed,
			ShardRuns:      spec.ShardRuns,
			DisableRuntime: spec.Scenario.DisableRuntime,
			DisableNoise:   spec.Scenario.DisableNoise,
			NoPad:          spec.NoPad,
		})
		if err != nil {
			return nil, err
		}
		_, exec, err := camp.SessionExecutor(events, spec.Session)
		return exec, err
	case StageTopo:
		camp, err := topo.NewCampaign(topo.Config{
			InH:            s.Arch.InH,
			InW:            s.Arch.InW,
			InC:            s.Arch.InC,
			Classes:        s.Arch.Classes,
			Inputs:         inputs,
			Level:          level,
			TrainSize:      spec.TrainZoo,
			HoldoutSize:    spec.Holdout,
			Runs:           spec.Runs,
			Quantum:        spec.Quantum,
			Workers:        1,
			Seed:           spec.Seed,
			ShardRuns:      spec.ShardRuns,
			DisableRuntime: spec.Scenario.DisableRuntime,
			DisableNoise:   spec.Scenario.DisableNoise,
		})
		if err != nil {
			return nil, err
		}
		_, exec, err := camp.SessionExecutor(events, spec.Session)
		return exec, err
	default:
		return nil, fmt.Errorf("repro: unknown fabric stage %q", spec.Stage)
	}
}

// journalPath derives the session's journal file from the configured
// base: one campaign runs several sessions (stages × register groups),
// and sweeps run many campaigns side by side — the stage, session and a
// campaign-digest prefix keep every completion log distinct while a
// rerun of the same session always finds its own.
func (fc FabricConfig) journalPath(spec WorkerSpec, digest string) string {
	return fmt.Sprintf("%s.%s.g%d.%s", fc.Journal, spec.Stage, spec.Session, digest[:12])
}

// collectFabric runs one collection session's shard plan on worker
// processes and returns the merged labelled profiles — the fabric
// counterpart of Pipeline.CollectProfilesByClass, shared by every stage.
// The merge is keyed by each plan's (class, start) placement, so the
// result is independent of process count, scheduling and arrival order.
func collectFabric(ctx context.Context, p *pipeline.Pipeline, pools map[int][]*tensor.Tensor, spec WorkerSpec, procs int, fc FabricConfig) (map[int][]hpc.Profile, error) {
	bin, err := fc.workerBin()
	if err != nil {
		return nil, err
	}
	spec.Proto = specProto
	specBytes, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	plans, err := p.WirePlans(pools)
	if err != nil {
		return nil, err
	}
	rec := p.Config().Obs
	rec.Add(obs.CShardsPlanned, int64(len(plans)))
	rec.SetPhase("collect")
	stage := rec.Span("fabric", "collect")
	defer stage.End()
	var journal *fabric.Journal
	if fc.Journal != "" {
		digest := fabric.CampaignDigest(specBytes)
		journal, err = fabric.OpenJournal(fc.journalPath(spec, digest), digest)
		if err != nil {
			return nil, err
		}
		defer journal.Close()
	}
	pool, err := fabric.StartPool(ctx, fabric.PoolConfig{
		Bin:   bin,
		Env:   fc.Env,
		Spec:  specBytes,
		Procs: procs,
		TCP:   fc.TCP,
		Obs:   rec,
	})
	if err != nil {
		return nil, err
	}
	defer pool.Close()
	payloads, err := (&fabric.Coordinator{Dispatcher: pool, Journal: journal, Obs: rec}).Run(ctx, plans)
	if err != nil {
		return nil, err
	}
	return p.MergeEncoded(plans, payloads)
}
