package repro

// Golden-report regression test: a small end-to-end campaign with a fixed
// seed is serialized to testdata/golden_report.json and compared on every
// run, so refactors of the collection/test machinery cannot silently
// shift the paper's leakage verdicts. Regenerate deliberately with:
//
//	go test -run TestGoldenReport -update .

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden test files")

const goldenPath = "testdata/golden_report.json"

// goldenTest is the serialized form of one pair test. T and P are stored
// rounded (see roundSig) and compared with a small relative tolerance, so
// the file stays stable across compiler FP scheduling differences while
// still pinning the statistics to ~6 significant digits.
type goldenTest struct {
	Event       string  `json:"event"`
	ClassA      int     `json:"class_a"`
	ClassB      int     `json:"class_b"`
	T           float64 `json:"t"`
	P           float64 `json:"p"`
	Significant bool    `json:"significant"`
}

type goldenReport struct {
	Name    string       `json:"name"`
	Classes []int        `json:"classes"`
	Alarms  int          `json:"alarms"`
	Tests   []goldenTest `json:"tests"`
}

// goldenCampaign runs the fixed campaign the golden file pins: the
// default-size MNIST scenario at seed 5, 2 classes, base events, on the
// pipeline with 2 workers and root seed 17. The configuration is chosen
// so the paper's asymmetric verdict is visible — cache-misses raise an
// alarm, branches stay quiet — and the pipeline's determinism guarantee
// makes the worker count irrelevant to the result.
func goldenCampaign(t *testing.T) *Report {
	t.Helper()
	s, err := NewScenario(ScenarioConfig{
		Dataset: DatasetMNIST,
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Evaluate(EvalConfig{
		Classes:      []int{1, 2},
		RunsPerClass: 60,
		Workers:      2,
		Seed:         17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func roundSig(v float64) float64 {
	if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return v
	}
	scale := math.Pow(10, 8-math.Ceil(math.Log10(math.Abs(v))))
	return math.Round(v*scale) / scale
}

func toGolden(rep *Report) goldenReport {
	g := goldenReport{
		Name:    rep.Name,
		Classes: rep.Dists.Classes,
		Alarms:  len(rep.Alarms),
	}
	for _, pt := range rep.Tests {
		g.Tests = append(g.Tests, goldenTest{
			Event:       pt.Event.String(),
			ClassA:      pt.ClassA,
			ClassB:      pt.ClassB,
			T:           roundSig(pt.Result.T),
			P:           roundSig(pt.Result.P),
			Significant: pt.Distinguishable(rep.Config.Alpha),
		})
	}
	return g
}

// closeEnough compares a regenerated statistic against the golden value
// with a relative tolerance well below anything that could flip a
// leakage verdict, but above FP-scheduling jitter.
func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	mag := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-6*mag
}

func TestGoldenReport(t *testing.T) {
	got := toGolden(goldenCampaign(t))

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden report rewritten: %s", goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestGoldenReport -update .` to create it): %v", err)
	}
	var want goldenReport
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}

	if got.Name != want.Name {
		t.Errorf("name = %q, want %q", got.Name, want.Name)
	}
	if len(got.Classes) != len(want.Classes) {
		t.Fatalf("classes = %v, want %v", got.Classes, want.Classes)
	}
	if got.Alarms != want.Alarms {
		t.Errorf("alarm count = %d, want %d — the leakage verdict shifted", got.Alarms, want.Alarms)
	}
	if len(got.Tests) != len(want.Tests) {
		t.Fatalf("test count = %d, want %d", len(got.Tests), len(want.Tests))
	}
	for i := range want.Tests {
		g, w := got.Tests[i], want.Tests[i]
		if g.Event != w.Event || g.ClassA != w.ClassA || g.ClassB != w.ClassB {
			t.Errorf("test %d identity = %s t%d,%d, want %s t%d,%d", i, g.Event, g.ClassA, g.ClassB, w.Event, w.ClassA, w.ClassB)
			continue
		}
		if !closeEnough(g.T, w.T) || !closeEnough(g.P, w.P) {
			t.Errorf("test %d (%s t%d,%d): t=%v p=%v, want t=%v p=%v", i, g.Event, g.ClassA, g.ClassB, g.T, g.P, w.T, w.P)
		}
		if g.Significant != w.Significant {
			t.Errorf("test %d (%s t%d,%d): significance %v, want %v — a leakage verdict flipped",
				i, g.Event, g.ClassA, g.ClassB, g.Significant, w.Significant)
		}
	}
}

// TestGoldenReportByteInvariantAcrossWorkers is the counter-invariance
// regression for the optimized simulation hot path: the exact golden
// campaign is executed at workers=1 and workers=8 and both serialized
// reports must be byte-for-byte identical to each other and pass the
// golden comparison. Any fast path that changed a single simulated counter
// — a memo replay, a batched range, a reused buffer — fails here.
func TestGoldenReportByteInvariantAcrossWorkers(t *testing.T) {
	s, err := NewScenario(ScenarioConfig{
		Dataset: DatasetMNIST,
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	marshal := func(workers int) []byte {
		rep, err := s.Evaluate(EvalConfig{
			Classes:      []int{1, 2},
			RunsPerClass: 60,
			Workers:      workers,
			Seed:         17,
		})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(toGolden(rep), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	one, eight := marshal(1), marshal(8)
	if string(one) != string(eight) {
		t.Fatalf("workers=1 and workers=8 serialized reports differ:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", one, eight)
	}
	// Both must also reproduce the committed golden file (modulo the FP
	// rounding tolerance the golden comparison allows).
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	var want goldenReport
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	var got goldenReport
	if err := json.Unmarshal(one, &got); err != nil {
		t.Fatal(err)
	}
	if got.Alarms != want.Alarms || len(got.Tests) != len(want.Tests) {
		t.Fatalf("report shape diverged from golden: alarms %d/%d, tests %d/%d",
			got.Alarms, want.Alarms, len(got.Tests), len(want.Tests))
	}
	for i := range want.Tests {
		g, w := got.Tests[i], want.Tests[i]
		if g.Event != w.Event || g.ClassA != w.ClassA || g.ClassB != w.ClassB ||
			!closeEnough(g.T, w.T) || !closeEnough(g.P, w.P) || g.Significant != w.Significant {
			t.Fatalf("test %d diverged from golden: got %+v, want %+v", i, g, w)
		}
	}
}

// TestGoldenReportWorkerInvariance re-runs the golden campaign with a
// different worker count and asserts the exact same statistics — the
// public-API form of the pipeline's determinism guarantee.
func TestGoldenReportWorkerInvariance(t *testing.T) {
	s, err := NewScenario(ScenarioConfig{
		Dataset:       DatasetMNIST,
		PerClassTrain: 20,
		PerClassTest:  10,
		Epochs:        1,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *Report {
		rep, err := s.Evaluate(EvalConfig{
			Classes:      []int{1, 2},
			RunsPerClass: 30,
			Workers:      workers,
			Seed:         17,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(1), run(8)
	if len(a.Tests) != len(b.Tests) {
		t.Fatalf("test counts differ: %d vs %d", len(a.Tests), len(b.Tests))
	}
	for i := range a.Tests {
		if a.Tests[i].Result != b.Tests[i].Result {
			t.Fatalf("workers=1 and workers=8 disagree at test %d: %+v vs %+v",
				i, a.Tests[i].Result, b.Tests[i].Result)
		}
	}
	if len(a.Alarms) != len(b.Alarms) {
		t.Fatalf("alarm counts differ: %d vs %d", len(a.Alarms), len(b.Alarms))
	}
}
