package repro

// Topology-recovery regression tests: a golden report pinning the
// reconstruction of a fixed held-out victim zoo at both the baseline and
// padded-envelope levels, the byte-invariance guarantee across worker
// counts, and the acceptance thresholds (exact layer counts and layer
// kinds on ≥90% of never-profiled baseline victims; kind recovery within
// 1.5× of chance under the envelope pad). Regenerate the golden file
// deliberately with:
//
//	go test -run TestTopoGoldenReport -update .

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/nn"
	"repro/internal/topo"
)

const goldenTopoPath = "testdata/golden_topo.json"

// goldenTopoCampaign is one level's serialized reconstruction outcome.
// Victim scorecards are integer counts, small-ratio floats and
// deterministic footprint errors, so everything is compared exactly.
type goldenTopoCampaign struct {
	Name                string              `json:"name"`
	Defense             string              `json:"defense"`
	Padded              bool                `json:"padded"`
	Events              []string            `json:"events"`
	Quantum             uint64              `json:"quantum"`
	TrainSpecs          []nn.SpecInfo       `json:"train_specs"`
	HoldoutSpecs        []nn.SpecInfo       `json:"holdout_specs"`
	Kinds               []string            `json:"kinds"`
	ChanceKind          float64             `json:"chance_kind"`
	Victims             []topo.VictimResult `json:"victims"`
	ExactCountRate      float64             `json:"exact_count_rate"`
	MeanKindAccuracy    float64             `json:"mean_kind_accuracy"`
	MeanParamRelErr     float64             `json:"mean_param_rel_err"`
	MeanFootprintRelErr float64             `json:"mean_footprint_rel_err"`
}

// goldenTopo pins the attack and defense directions of the scenario in
// one file: the same held-out victims reconstructed at baseline and under
// the envelope pad.
type goldenTopo struct {
	Baseline goldenTopoCampaign `json:"baseline"`
	Padded   goldenTopoCampaign `json:"padded"`
}

func toGoldenTopoCampaign(res *TopoResult) goldenTopoCampaign {
	g := goldenTopoCampaign{
		Name:                res.Name,
		Defense:             res.Level.String(),
		Padded:              res.Padded,
		Quantum:             res.Quantum,
		TrainSpecs:          res.TrainSpecs,
		HoldoutSpecs:        res.HoldoutSpecs,
		Kinds:               res.Kinds,
		ChanceKind:          res.ChanceKind,
		Victims:             res.Victims,
		ExactCountRate:      res.ExactCountRate,
		MeanKindAccuracy:    res.MeanKindAccuracy,
		MeanParamRelErr:     res.MeanParamRelErr,
		MeanFootprintRelErr: res.MeanFootprintRelErr,
	}
	for _, e := range res.Events {
		g.Events = append(g.Events, e.String())
	}
	return g
}

// goldenTopoCampaigns runs the fixed campaigns the golden file pins: the
// small shared attack scenario's held-out zoo (6 training architectures,
// 5 victims, 6 measured runs each) reconstructed at baseline and at
// padded-envelope, root seed 17.
func goldenTopoCampaigns(t *testing.T, workers int) goldenTopo {
	t.Helper()
	run := func(level DefenseLevel) goldenTopoCampaign {
		res, err := attackScenario(t).TopoGrouped(context.Background(), level, TopoConfig{
			TrainZoo:  6,
			Holdout:   5,
			Runs:      6,
			MaxInputs: 8,
			Workers:   workers,
			Seed:      17,
		})
		if err != nil {
			t.Fatal(err)
		}
		return toGoldenTopoCampaign(res)
	}
	return goldenTopo{
		Baseline: run(DefenseBaseline),
		Padded:   run(DefensePaddedEnvelope),
	}
}

// normalizeGoldenTopo round-trips the in-memory result through its JSON
// form, dropping non-serialized scorer internals (LayerTruth.InVol) so
// the comparison sees exactly what the golden file pins.
func normalizeGoldenTopo(t *testing.T, g goldenTopo) goldenTopo {
	t.Helper()
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var out goldenTopo
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestTopoGoldenReport(t *testing.T) {
	got := goldenTopoCampaigns(t, 2)

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenTopoPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTopoPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden topo report rewritten: %s", goldenTopoPath)
		return
	}

	data, err := os.ReadFile(goldenTopoPath)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestTopoGoldenReport -update .` to create it): %v", err)
	}
	var want goldenTopo
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	got = normalizeGoldenTopo(t, got)
	if !reflect.DeepEqual(got, want) {
		gotJSON, _ := json.MarshalIndent(got, "", "  ")
		t.Fatalf("topo result diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", gotJSON, data)
	}
	// The golden campaigns must show the headline result in both
	// directions: near-perfect reconstruction of never-profiled victims at
	// baseline, collapse to (within 1.5× of) chance under the envelope pad.
	if got.Baseline.ExactCountRate < 0.9 {
		t.Fatalf("golden baseline exact layer-count rate = %.3f, want >= 0.9", got.Baseline.ExactCountRate)
	}
	if got.Baseline.MeanKindAccuracy < 0.9 {
		t.Fatalf("golden baseline kind accuracy = %.3f, want >= 0.9", got.Baseline.MeanKindAccuracy)
	}
	if got.Padded.MeanKindAccuracy > 1.5*got.Padded.ChanceKind {
		t.Fatalf("golden padded kind accuracy = %.3f, want <= 1.5x chance (%.3f)",
			got.Padded.MeanKindAccuracy, got.Padded.ChanceKind)
	}
	// Train/holdout disjointness is part of the pinned contract.
	trained := map[string]bool{}
	for _, s := range got.Baseline.TrainSpecs {
		trained[s.Name] = true
	}
	for _, s := range got.Baseline.HoldoutSpecs {
		if trained[s.Name] {
			t.Fatalf("held-out victim %q appears in the training zoo", s.Name)
		}
	}
}

// TestTopoGoldenByteInvariantAcrossWorkers executes the exact golden
// campaigns at workers=1 and workers=8; the serialized reports must be
// byte-for-byte identical to each other and to the committed golden file.
func TestTopoGoldenByteInvariantAcrossWorkers(t *testing.T) {
	marshal := func(workers int) []byte {
		data, err := json.MarshalIndent(goldenTopoCampaigns(t, workers), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	one, eight := marshal(1), marshal(8)
	if string(one) != string(eight) {
		t.Fatalf("workers=1 and workers=8 topo reports differ:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", one, eight)
	}
	want, err := os.ReadFile(goldenTopoPath)
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	if string(one)+"\n" != string(want) {
		t.Fatalf("topo report diverged from committed golden:\n--- got ---\n%s\n--- want ---\n%s", one, want)
	}
}
