package repro

// The attack stage: the exploitation counterpart of Evaluate. Where the
// Evaluator reports that HPC distributions are *distinguishable*, the
// attack stage quantifies that they are *exploitable* — a profiling
// adversary (Gaussian template and kNN, following the paper's threat model
// and Wei et al.'s input-recovery direction) is trained on a deterministic
// profiling split and scored on held-out attack runs, all executed on the
// same concurrent sharded pipeline as the evaluation campaigns. Every
// observation derives from the root seed via core.DeriveSeed, so the
// confusion matrices are bit-for-bit identical at any worker count.

import (
	"context"
	"fmt"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/hpc"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// AttackResult is the attack stage's output: confusion matrices and
// accuracies of both attackers over the held-out observations.
type AttackResult = attack.Result

// ConfusionMatrix tallies attack outcomes, Matrix[true][predicted].
type ConfusionMatrix = attack.ConfusionMatrix

// AttackConfig controls an end-to-end attack campaign. The zero value
// profiles 100 classifications per category and attacks 60 held-out ones
// with the paper's base events on all four paper categories.
type AttackConfig struct {
	Classes []int
	Events  []Event
	// ProfileRuns is the adversary's profiling budget per class; default
	// 100.
	ProfileRuns int
	// AttackRuns is the number of held-out observations per class the
	// attackers are scored on; default 60.
	AttackRuns int
	// K is the kNN neighbourhood size; default 5 (clamped to the profiling
	// set).
	K int
	// Workers is the pipeline worker count; 0 → GOMAXPROCS. The attack
	// stage always runs on the concurrent sharded pipeline.
	Workers int
	// Seed is the campaign root seed; 0 uses the scenario seed. Attack
	// observations are derived in a separate seed domain from evaluation
	// campaigns, so the adversary never replays the Evaluator's traces.
	Seed int64
	// ShardRuns bounds measured runs per shard; 0 uses the pipeline
	// default.
	ShardRuns int
	// Processes distributes shard execution over that many shardworker OS
	// processes through the distributed audit fabric; 0 keeps execution
	// in-process. Confusion matrices are byte-identical either way.
	Processes int
	// Fabric configures the fabric when Processes ≥ 1.
	Fabric FabricConfig
	// Batch groups a shard's measured runs into batched replay sessions
	// of this size (core.Config.Batch). Attribution is exact, so results
	// are byte-identical at any batch size. Default 1.
	Batch int
	// Obs, when non-nil, records campaign telemetry. Observational
	// output only: results are byte-identical with or without it.
	Obs *obs.Recorder
}

func (c AttackConfig) withDefaults() AttackConfig {
	if len(c.Classes) == 0 {
		c.Classes = PaperClasses()
	}
	if len(c.Events) == 0 {
		c.Events = []Event{EvCacheMisses, EvBranches}
	}
	if c.ProfileRuns <= 0 {
		c.ProfileRuns = 100
	}
	if c.AttackRuns <= 0 {
		c.AttackRuns = 60
	}
	if c.K <= 0 {
		c.K = 5
	}
	return c
}

// Attack runs the attack stage against the scenario at its configured
// defense level.
func (s *Scenario) Attack(ctx context.Context, cfg AttackConfig) (*AttackResult, error) {
	return s.AttackGrouped(ctx, s.Config.Defense, cfg)
}

// AttackGrouped runs the attack stage at an explicit defense level over an
// arbitrarily wide event list. Event sets wider than the HPC register file
// cannot be counted in one session, so they are split into register-sized
// groups, each collected as its own pipeline campaign (with a
// group-derived root seed), and the per-run profiles are joined per
// (class, run) — the multi-session feature collection a real perf-bound
// adversary must perform. The profiling/attack split is positional over
// the deterministic merge, so results are identical at any worker count.
func (s *Scenario) AttackGrouped(ctx context.Context, level DefenseLevel, cfg AttackConfig) (*AttackResult, error) {
	cfg = cfg.withDefaults()
	// Fail bad budgets before any collection: profiling and attack runs
	// are per-class, and templates need at least two profiling samples.
	if cfg.ProfileRuns < 2 {
		return nil, fmt.Errorf("repro: attack needs at least 2 profiling runs per class, got %d", cfg.ProfileRuns)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = s.Config.Seed
	}
	total := cfg.ProfileRuns + cfg.AttackRuns
	factory := s.FactoryFor(level)
	pools, err := s.ClassPools(cfg.Classes...)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("%s/%s", s.Config.Dataset, level)

	// Domain 2 separates attack observations from evaluation campaigns
	// (EvaluateGrouped derives with domain 1).
	groupPipeline := func(g int) (*pipeline.Pipeline, error) {
		lo := g * hpc.DefaultCounters
		hi := lo + hpc.DefaultCounters
		if hi > len(cfg.Events) {
			hi = len(cfg.Events)
		}
		ev, err := core.NewEvaluator(core.Config{
			Events:       cfg.Events[lo:hi],
			RunsPerClass: total,
			Batch:        cfg.Batch,
			Obs:          cfg.Obs,
		})
		if err != nil {
			return nil, err
		}
		return pipeline.New(ev, pipeline.Config{
			Workers:   cfg.Workers,
			RootSeed:  core.DeriveSeed(seed, g, 2),
			ShardRuns: cfg.ShardRuns,
			Obs:       cfg.Obs,
		})
	}

	// The common case — the event set fits the register file and shards
	// run in-process — is one campaign on the pipeline's canonical attack
	// path. (The fabric path below decomposes into the exact same collect,
	// split and evaluate steps, so both produce identical bytes.)
	if len(cfg.Events) <= hpc.DefaultCounters && cfg.Processes == 0 {
		p, err := groupPipeline(0)
		if err != nil {
			return nil, err
		}
		return p.Attack(ctx, name, factory, pools, cfg.ProfileRuns, cfg.K)
	}

	// Wide event sets (and all fabric campaigns): one collection campaign
	// per register-sized group; profiles of the same (class, run) are
	// joined across groups into one feature vector.
	byClass := map[int][]hpc.Profile{}
	for g := 0; g*hpc.DefaultCounters < len(cfg.Events); g++ {
		p, err := groupPipeline(g)
		if err != nil {
			return nil, err
		}
		var part map[int][]hpc.Profile
		if cfg.Processes > 0 {
			lo := g * hpc.DefaultCounters
			hi := lo + hpc.DefaultCounters
			if hi > len(cfg.Events) {
				hi = len(cfg.Events)
			}
			spec := WorkerSpec{
				Stage:        StageAttack,
				Scenario:     s.spec(),
				Level:        level.String(),
				Events:       eventNames(cfg.Events[lo:hi]),
				Session:      g,
				Classes:      cfg.Classes,
				RunsPerClass: total,
				RootSeed:     core.DeriveSeed(seed, g, 2),
				ShardRuns:    cfg.ShardRuns,
				Batch:        cfg.Batch,
			}
			part, err = collectFabric(ctx, p, pools, spec, cfg.Processes, cfg.Fabric)
		} else {
			part, err = p.CollectProfiles(ctx, factory, pools)
		}
		if err != nil {
			return nil, err
		}
		joinProfiles(byClass, part)
	}

	cfg.Obs.SetPhase("attack")
	defer cfg.Obs.Span("pipeline", "attack").End()
	profSet, atkSet, err := attack.Split(byClass, cfg.ProfileRuns)
	if err != nil {
		return nil, err
	}
	return attack.Evaluate(name, cfg.Events, profSet, atkSet, cfg.K)
}
