package repro

// The distributed audit fabric's end-to-end test suite: the four golden
// campaigns re-executed through real shardworker OS processes (bytes
// must match the in-process pipeline exactly, at any process count and
// over either transport), and the fault-injection regressions — a
// worker SIGKILLed mid-shard, a journal with a torn tail, a worker
// exiting non-zero — every one of which must either resume to the exact
// clean-run bytes or fail loudly with the worker's fate in the error.
//
// The shardworker binary is built once per test binary from
// ./cmd/shardworker; tests that need it share the build.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	workerBinOnce sync.Once
	workerBinDir  string
	workerBinPath string
	workerBinErr  error
)

func TestMain(m *testing.M) {
	code := m.Run()
	if workerBinDir != "" {
		os.RemoveAll(workerBinDir)
	}
	os.Exit(code)
}

// shardworkerBin builds cmd/shardworker once and returns the binary path.
func shardworkerBin(t *testing.T) string {
	t.Helper()
	workerBinOnce.Do(func() {
		workerBinDir, workerBinErr = os.MkdirTemp("", "repro-shardworker")
		if workerBinErr != nil {
			return
		}
		bin := filepath.Join(workerBinDir, "shardworker")
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/shardworker").CombinedOutput()
		if err != nil {
			workerBinErr = fmt.Errorf("building shardworker: %v\n%s", err, out)
			return
		}
		workerBinPath = bin
	})
	if workerBinErr != nil {
		t.Fatal(workerBinErr)
	}
	return workerBinPath
}

func fabricCfg(t *testing.T) FabricConfig {
	return FabricConfig{WorkerBin: shardworkerBin(t)}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// smallEvalConfig is the shared small report campaign of the fault
// tests: 2 classes × 30 runs in 8-run shards — 8 shards, enough to keep
// several processes busy and to make partial completion observable.
func smallEvalConfig(procs int, fc FabricConfig) EvalConfig {
	return EvalConfig{
		Classes:      []int{1, 2},
		RunsPerClass: 30,
		Workers:      2,
		Seed:         17,
		ShardRuns:    8,
		Processes:    procs,
		Fabric:       fc,
	}
}

func smallEvalBytes(t *testing.T, procs int, fc FabricConfig) []byte {
	t.Helper()
	rep, err := attackScenario(t).Evaluate(smallEvalConfig(procs, fc))
	if err != nil {
		t.Fatal(err)
	}
	return mustJSON(t, toGolden(rep))
}

// TestGoldenReportByteInvariantAcrossProcesses executes the exact golden
// report campaign through the subprocess dispatcher at processes=1 and
// processes=4: every worker process rebuilds the scenario from the wire
// spec alone, and all serialized reports must be byte-for-byte identical
// to the in-process pipeline's.
func TestGoldenReportByteInvariantAcrossProcesses(t *testing.T) {
	want := mustJSON(t, toGolden(goldenCampaign(t)))
	s, err := NewScenario(ScenarioConfig{
		Dataset: DatasetMNIST,
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 4} {
		rep, err := s.Evaluate(EvalConfig{
			Classes:      []int{1, 2},
			RunsPerClass: 60,
			Workers:      2,
			Seed:         17,
			Processes:    procs,
			Fabric:       fabricCfg(t),
		})
		if err != nil {
			t.Fatalf("processes=%d: %v", procs, err)
		}
		if got := mustJSON(t, toGolden(rep)); !bytes.Equal(got, want) {
			t.Fatalf("processes=%d report differs from in-process bytes:\n--- processes=%d ---\n%s\n--- in-process ---\n%s", procs, procs, got, want)
		}
	}
}

// TestAttackGoldenByteInvariantAcrossProcesses runs the exact golden
// attack campaign at processes=1 and processes=4; the confusion matrices
// must match the in-process run byte-for-byte.
func TestAttackGoldenByteInvariantAcrossProcesses(t *testing.T) {
	want := mustJSON(t, toGoldenAttack(goldenAttackCampaign(t, 2)))
	for _, procs := range []int{1, 4} {
		res, err := attackScenario(t).Attack(context.Background(), AttackConfig{
			Classes:     []int{1, 2, 3},
			ProfileRuns: 40,
			AttackRuns:  20,
			Workers:     2,
			Seed:        17,
			Processes:   procs,
			Fabric:      fabricCfg(t),
		})
		if err != nil {
			t.Fatalf("processes=%d: %v", procs, err)
		}
		if got := mustJSON(t, toGoldenAttack(res)); !bytes.Equal(got, want) {
			t.Fatalf("processes=%d attack result differs from in-process bytes:\n--- processes=%d ---\n%s\n--- in-process ---\n%s", procs, procs, got, want)
		}
	}
}

// TestArchIDGoldenByteInvariantAcrossProcesses runs the exact golden
// fingerprinting campaign at processes=1 and processes=4 and also pins
// the result against the committed golden file.
func TestArchIDGoldenByteInvariantAcrossProcesses(t *testing.T) {
	want := mustJSON(t, toGoldenArchID(goldenArchIDCampaign(t, 2)))
	for _, procs := range []int{1, 4} {
		res, err := attackScenario(t).ArchID(context.Background(), ArchIDConfig{
			ProfileRuns: 12,
			AttackRuns:  6,
			MaxInputs:   12,
			Workers:     2,
			Seed:        17,
			Processes:   procs,
			Fabric:      fabricCfg(t),
		})
		if err != nil {
			t.Fatalf("processes=%d: %v", procs, err)
		}
		if got := mustJSON(t, toGoldenArchID(res)); !bytes.Equal(got, want) {
			t.Fatalf("processes=%d archid result differs from in-process bytes:\n--- processes=%d ---\n%s\n--- in-process ---\n%s", procs, procs, got, want)
		}
	}
	golden, err := os.ReadFile(goldenArchIDPath)
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	if string(want)+"\n" != string(golden) {
		t.Fatalf("in-process archid result diverged from committed golden")
	}
}

// TestTopoGoldenByteInvariantAcrossProcesses runs the exact golden
// topology-recovery campaigns (baseline and padded-envelope) at
// processes=1 and processes=4; both serialized scorecards must match the
// in-process bytes.
func TestTopoGoldenByteInvariantAcrossProcesses(t *testing.T) {
	want := mustJSON(t, goldenTopoCampaigns(t, 2))
	run := func(procs int) goldenTopo {
		runLevel := func(level DefenseLevel) goldenTopoCampaign {
			res, err := attackScenario(t).TopoGrouped(context.Background(), level, TopoConfig{
				TrainZoo:  6,
				Holdout:   5,
				Runs:      6,
				MaxInputs: 8,
				Workers:   2,
				Seed:      17,
				Processes: procs,
				Fabric:    fabricCfg(t),
			})
			if err != nil {
				t.Fatalf("processes=%d %s: %v", procs, level, err)
			}
			return toGoldenTopoCampaign(res)
		}
		return goldenTopo{
			Baseline: runLevel(DefenseBaseline),
			Padded:   runLevel(DefensePaddedEnvelope),
		}
	}
	for _, procs := range []int{1, 4} {
		if got := mustJSON(t, run(procs)); !bytes.Equal(got, want) {
			t.Fatalf("processes=%d topo result differs from in-process bytes:\n--- processes=%d ---\n%s\n--- in-process ---\n%s", procs, procs, got, want)
		}
	}
}

// TestFabricTCPTransportByteIdentical re-runs the small report campaign
// with shards dispatched over loopback TCP connections instead of
// stdin/stdout pipes; the transport must be invisible in the bytes.
func TestFabricTCPTransportByteIdentical(t *testing.T) {
	want := smallEvalBytes(t, 0, FabricConfig{})
	fc := fabricCfg(t)
	fc.TCP = true
	if got := smallEvalBytes(t, 2, fc); !bytes.Equal(got, want) {
		t.Fatalf("TCP transport changed report bytes:\n--- tcp ---\n%s\n--- in-process ---\n%s", got, want)
	}
}

// journalFiles lists the per-session journal files under base.
func journalFiles(t *testing.T, base string) []string {
	t.Helper()
	matches, err := filepath.Glob(base + ".*")
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestFabricSIGKILLResumeByteIdentical is the crash-recovery regression:
// a campaign loses one worker to SIGKILL mid-shard (the fault hook kills
// exactly one process, right before it would execute a shard), the
// campaign fails loudly naming the signal — and a rerun over the same
// journal resumes the completed shards and produces a report
// byte-identical to a clean run.
func TestFabricSIGKILLResumeByteIdentical(t *testing.T) {
	want := smallEvalBytes(t, 0, FabricConfig{})
	dir := t.TempDir()

	fc := fabricCfg(t)
	fc.Journal = filepath.Join(dir, "audit")
	fc.Env = []string{"REPRO_FABRIC_TEST_KILL_BEFORE_SHARD=" + filepath.Join(dir, "kill-claimed")}
	_, err := attackScenario(t).Evaluate(smallEvalConfig(2, fc))
	if err == nil {
		t.Fatal("campaign with a SIGKILLed worker succeeded")
	}
	if !strings.Contains(err.Error(), "signal: killed") {
		t.Fatalf("error does not name the worker's death: %v", err)
	}
	if len(journalFiles(t, fc.Journal)) == 0 {
		t.Fatal("failed campaign left no journal")
	}

	fc.Env = nil
	got := smallEvalBytes(t, 2, fc)
	if !bytes.Equal(got, want) {
		t.Fatalf("journal-resumed report differs from clean run:\n--- resumed ---\n%s\n--- clean ---\n%s", got, want)
	}
}

// TestFabricJournalCorruptTailReRunsOnlyMissing truncates the journal's
// final entry mid-line after a clean campaign; the rerun must discard
// only the torn entry, re-measure exactly that one shard (the fault hook
// kills the worker after one result, so a second re-run would fail the
// campaign) and still produce the clean bytes. A third run then proves
// the repaired journal satisfies the whole campaign with zero shard
// executions.
func TestFabricJournalCorruptTailReRunsOnlyMissing(t *testing.T) {
	want := smallEvalBytes(t, 0, FabricConfig{})
	dir := t.TempDir()
	fc := fabricCfg(t)
	fc.Journal = filepath.Join(dir, "audit")
	if got := smallEvalBytes(t, 1, fc); !bytes.Equal(got, want) {
		t.Fatalf("clean journaled run differs from in-process bytes")
	}
	files := journalFiles(t, fc.Journal)
	if len(files) != 1 {
		t.Fatalf("journal files = %v, want exactly one", files)
	}

	// Tear the final entry: keep the line's first half, drop the newline.
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	trimmed := bytes.TrimRight(data, "\n")
	lastLine := trimmed[bytes.LastIndexByte(trimmed, '\n')+1:]
	torn := trimmed[:len(trimmed)-len(lastLine)/2]
	if err := os.WriteFile(files[0], torn, 0o644); err != nil {
		t.Fatal(err)
	}

	fc.Env = []string{"REPRO_FABRIC_TEST_FAIL_AFTER_RESULTS=1"}
	if got := smallEvalBytes(t, 1, fc); !bytes.Equal(got, want) {
		t.Fatalf("corrupt-tail resume differs from clean run:\n--- resumed ---\n%s\n--- clean ---\n%s", got, want)
	}

	// Everything is journaled again: this run must dispatch nothing, so
	// even a worker that dies after its first result never gets the chance.
	if got := smallEvalBytes(t, 1, fc); !bytes.Equal(got, want) {
		t.Fatalf("fully-journaled rerun differs from clean run")
	}
}

// TestFabricWorkerExitSurfacesStderr is the failure-propagation
// regression: every worker exits 1 after its first result, so the
// campaign cannot finish — the coordinator must cancel what is left and
// return an error carrying the worker's exit status and stderr.
func TestFabricWorkerExitSurfacesStderr(t *testing.T) {
	fc := fabricCfg(t)
	fc.Env = []string{"REPRO_FABRIC_TEST_FAIL_AFTER_RESULTS=1"}
	_, err := attackScenario(t).Evaluate(smallEvalConfig(2, fc))
	if err == nil {
		t.Fatal("campaign with dying workers succeeded")
	}
	if !strings.Contains(err.Error(), "exit status 1") {
		t.Fatalf("error does not carry the worker exit status: %v", err)
	}
	if !strings.Contains(err.Error(), "injected failure after 1 results") {
		t.Fatalf("error does not carry the worker stderr: %v", err)
	}
}

// TestFabricSpecProtoMismatchFailsLoudly pins the spec-layout version
// check: a worker handed a spec from a different binary generation must
// refuse it before any collection.
func TestFabricSpecProtoMismatchFailsLoudly(t *testing.T) {
	spec, err := json.Marshal(WorkerSpec{Proto: "repro-fabric-0", Stage: StageReport})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWorkerRunner(context.Background(), spec); err == nil ||
		!strings.Contains(err.Error(), "out of sync") {
		t.Fatalf("stale spec proto not rejected loudly: %v", err)
	}
}

// TestFabricNeedsWorkerBinary pins the configuration error: Processes ≥ 1
// without a worker binary must fail with a message naming both knobs.
func TestFabricNeedsWorkerBinary(t *testing.T) {
	t.Setenv("REPRO_SHARDWORKER", "")
	_, err := attackScenario(t).Evaluate(smallEvalConfig(1, FabricConfig{}))
	if err == nil || !strings.Contains(err.Error(), "REPRO_SHARDWORKER") {
		t.Fatalf("missing worker binary not reported: %v", err)
	}
}
