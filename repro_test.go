package repro

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/march"
	"repro/internal/stats"
)

// smallScenario builds a fast MNIST scenario for facade tests.
func smallScenario(t *testing.T) *Scenario {
	t.Helper()
	s, err := NewScenario(ScenarioConfig{
		Dataset:       DatasetMNIST,
		PerClassTrain: 20,
		PerClassTest:  10,
		Epochs:        1,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewScenarioUnknownDataset(t *testing.T) {
	if _, err := NewScenario(ScenarioConfig{Dataset: "svhn"}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestScenarioConfigDefaults(t *testing.T) {
	c := ScenarioConfig{Dataset: DatasetMNIST}.withDefaults()
	if c.Seed != 1 || c.PerClassTrain != 120 || c.PerClassTest != 60 || c.Epochs != 2 {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestSmallScenarioEndToEnd(t *testing.T) {
	s := smallScenario(t)
	if s.TestAccuracy < 0.5 {
		t.Fatalf("test accuracy %.3f too low even for the small config", s.TestAccuracy)
	}
	rep, err := s.Evaluate(EvalConfig{Classes: []int{1, 2}, RunsPerClass: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tests) != 2 { // 1 pair × 2 events
		t.Fatalf("tests = %d, want 2", len(rep.Tests))
	}
	var b strings.Builder
	if err := TableTTests(&b, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "t1,2") {
		t.Fatalf("table missing pair:\n%s", b.String())
	}
	b.Reset()
	if err := RenderFigure1(&b, "fig1", rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "category 1") {
		t.Fatalf("figure 1 malformed:\n%s", b.String())
	}
	b.Reset()
	if err := FigureDistributions(&b, "fig3", rep, EvCacheMisses); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "category 2") {
		t.Fatalf("figure 3 malformed:\n%s", b.String())
	}
	b.Reset()
	if err := WriteCSV(&b, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "event,class,run,value") {
		t.Fatal("CSV header missing")
	}
	b.Reset()
	RenderAlarms(&b, rep)
	RenderSummary(&b, rep)
	if b.Len() == 0 {
		t.Fatal("alarm/summary rendering empty")
	}
}

func TestClassPools(t *testing.T) {
	s := smallScenario(t)
	pools, err := s.ClassPools(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pools) != 2 || len(pools[1]) == 0 || len(pools[3]) == 0 {
		t.Fatalf("pools = %v", len(pools))
	}
	if _, err := s.ClassPools(99); err == nil {
		t.Fatal("missing class accepted")
	}
	// Default classes are the paper's four.
	def, err := s.ClassPools()
	if err != nil {
		t.Fatal(err)
	}
	if len(def) != 4 {
		t.Fatalf("default pools = %d classes, want 4", len(def))
	}
}

func TestPaperClasses(t *testing.T) {
	got := PaperClasses()
	want := []int{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PaperClasses = %v", got)
		}
	}
}

func TestFigure2bSmall(t *testing.T) {
	s := smallScenario(t)
	prof, out, err := Figure2b(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != len(march.AllEvents()) {
		t.Fatalf("profile has %d events, want %d", len(prof), len(march.AllEvents()))
	}
	for _, e := range march.AllEvents() {
		if !strings.Contains(out, e.String()) {
			t.Fatalf("output missing %s:\n%s", e, out)
		}
	}
	// perf-style Indian grouping must appear for the big counters.
	if !strings.Contains(out, ",") {
		t.Fatalf("no digit grouping in:\n%s", out)
	}
	if prof.Get(EvInstructions) <= prof.Get(EvBranches) {
		t.Fatal("instructions not above branches")
	}
}

func TestFigure1ReturnsMeans(t *testing.T) {
	s := smallScenario(t)
	// Workers: 2 routes the figure's campaign through the sharded pipeline.
	means, rep, err := Figure1(s, EvalConfig{Classes: []int{1, 2}, RunsPerClass: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(means) != 2 {
		t.Fatalf("means = %v", means)
	}
	for i, cls := range rep.Dists.Classes {
		if want := stats.Mean(rep.Dists.Get(EvCacheMisses, cls)); means[i] != want {
			t.Fatalf("mean[%d] = %v, want %v", i, means[i], want)
		}
	}
}

// fakeShapeReport builds a report with chosen p-values for ShapeCheck.
func fakeShapeReport(cmPs, brPs []float64) *Report {
	rep := &Report{Config: core.Config{Alpha: 0.05}}
	rep.Dists = &core.Distributions{Events: []Event{EvCacheMisses, EvBranches}}
	add := func(e Event, ps []float64) {
		for i, p := range ps {
			var t core.PairTest
			t.Event = e
			t.ClassA, t.ClassB = 1, i+2
			t.Result = stats.TTestResult{T: 5, DF: 10, P: p}
			rep.Tests = append(rep.Tests, t)
		}
	}
	add(EvCacheMisses, cmPs)
	add(EvBranches, brPs)
	return rep
}

func TestShapeCheck(t *testing.T) {
	// Paper shape: all cache pairs significant, few branch pairs.
	ok, _ := ShapeCheck(fakeShapeReport(
		[]float64{0.001, 0.0001, 0.01},
		[]float64{0.3, 0.04, 0.6},
	))
	if !ok {
		t.Fatal("paper-shaped report rejected")
	}
	// Cache pair insignificant → fail.
	ok, findings := ShapeCheck(fakeShapeReport(
		[]float64{0.001, 0.2, 0.01},
		[]float64{0.3, 0.4, 0.6},
	))
	if ok {
		t.Fatalf("missing cache separation accepted: %v", findings)
	}
	// Branches too discriminative → fail.
	ok, _ = ShapeCheck(fakeShapeReport(
		[]float64{0.001, 0.0001, 0.01},
		[]float64{0.001, 0.04, 0.01},
	))
	if ok {
		t.Fatal("over-discriminative branches accepted")
	}
}

func TestDefaultScenarioCached(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full default scenario")
	}
	a, err := DefaultScenario(DatasetMNIST)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DefaultScenario(DatasetMNIST)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("DefaultScenario rebuilt instead of caching")
	}
}

func TestEvaluateDefenseQuietsAlarms(t *testing.T) {
	// End-to-end: constant-time deployment of the small scenario must not
	// produce cache-miss alarms even where the baseline does.
	leaky := smallScenario(t)
	leakyRep, err := leaky.Evaluate(EvalConfig{Classes: []int{1, 2, 3, 4}, RunsPerClass: 40})
	if err != nil {
		t.Fatal(err)
	}
	hard, err := NewScenario(ScenarioConfig{
		Dataset:       DatasetMNIST,
		PerClassTrain: 20,
		PerClassTest:  10,
		Epochs:        1,
		Seed:          5,
		Defense:       DefenseConstantTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	hardRep, err := hard.Evaluate(EvalConfig{Classes: []int{1, 2, 3, 4}, RunsPerClass: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(hardRep.AlarmsFor(EvCacheMisses)) >= len(leakyRep.AlarmsFor(EvCacheMisses)) &&
		len(leakyRep.AlarmsFor(EvCacheMisses)) > 0 {
		t.Fatalf("defense did not reduce cache alarms: baseline %d, constant-time %d",
			len(leakyRep.AlarmsFor(EvCacheMisses)), len(hardRep.AlarmsFor(EvCacheMisses)))
	}
}
