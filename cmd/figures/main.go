// Command figures regenerates every figure of the paper's evaluation as
// ASCII art (and optionally CSV for external plotting).
//
// Usage:
//
//	figures -fig all            # everything
//	figures -fig 1a             # Figure 1(a): avg cache-misses per category, MNIST
//	figures -fig 2b             # Figure 2(b): perf-stat dump of 8 events
//	figures -fig 3a -runs 200   # Figure 3(a): cache-miss distributions, MNIST
//
// Figure index: 1a, 1b (bar charts), 2b (perf stat), 3a, 3b (MNIST
// distributions), 4a, 4b (CIFAR distributions).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	var (
		fig  = flag.String("fig", "all", "figure id: 1a,1b,2b,3a,3b,4a,4b,all")
		runs = flag.Int("runs", 300, "classifications per category")
	)
	flag.Parse()

	want := func(id string) bool { return *fig == "all" || *fig == id }

	// Reports are shared between figures of the same dataset.
	var mnistRep, cifarRep *repro.Report
	needMNIST := want("1a") || want("3a") || want("3b")
	needCIFAR := want("1b") || want("4a") || want("4b")

	if needMNIST {
		mnistRep = mustReport(repro.DatasetMNIST, *runs)
	}
	if needCIFAR {
		cifarRep = mustReport(repro.DatasetCIFAR, *runs)
	}

	if want("1a") {
		check(repro.RenderFigure1(os.Stdout, "Figure 1(a): average cache-misses per category (MNIST)", mnistRep))
		fmt.Println()
	}
	if want("1b") {
		check(repro.RenderFigure1(os.Stdout, "Figure 1(b): average cache-misses per category (CIFAR-10)", cifarRep))
		fmt.Println()
	}
	if want("2b") {
		s, err := repro.DefaultScenario(repro.DatasetMNIST)
		check(err)
		_, out, err := repro.Figure2b(s)
		check(err)
		fmt.Println("Figure 2(b): hardware events during one classification (perf stat layout)")
		fmt.Print(out)
		fmt.Println()
	}
	if want("3a") {
		check(repro.FigureDistributions(os.Stdout, "Figure 3(a): MNIST", mnistRep, repro.EvCacheMisses))
		fmt.Println()
	}
	if want("3b") {
		check(repro.FigureDistributions(os.Stdout, "Figure 3(b): MNIST", mnistRep, repro.EvBranches))
		fmt.Println()
	}
	if want("4a") {
		check(repro.FigureDistributions(os.Stdout, "Figure 4(a): CIFAR-10", cifarRep, repro.EvCacheMisses))
		fmt.Println()
	}
	if want("4b") {
		check(repro.FigureDistributions(os.Stdout, "Figure 4(b): CIFAR-10", cifarRep, repro.EvBranches))
		fmt.Println()
	}
}

func mustReport(d repro.Dataset, runs int) *repro.Report {
	s, err := repro.DefaultScenario(d)
	check(err)
	rep, err := s.Evaluate(repro.EvalConfig{RunsPerClass: runs})
	check(err)
	return rep
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
