// Command figures regenerates every figure of the paper's evaluation as
// ASCII art (and optionally CSV for external plotting).
//
// Usage:
//
//	figures -fig all            # everything
//	figures -fig 1a             # Figure 1(a): avg cache-misses per category, MNIST
//	figures -fig 2b             # Figure 2(b): perf-stat dump of 8 events
//	figures -fig 3a -runs 200   # Figure 3(a): cache-miss distributions, MNIST
//	figures -fig 3a -defense constant-time   # the same panel, hardened
//
// Figure index: 1a, 1b (bar charts), 2b (perf stat), 3a, 3b (MNIST
// distributions), 4a, 4b (CIFAR distributions).
//
// Collection campaigns run on the concurrent sharded pipeline by default
// (-workers -1 = GOMAXPROCS, 0 = the legacy sequential path, matching
// cmd/evaluate); for a fixed -seed every figure is reproducible at any
// worker count.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	var (
		fig     = flag.String("fig", "all", "figure id: 1a,1b,2b,3a,3b,4a,4b,all")
		runs    = flag.Int("runs", 300, "classifications per category")
		defName = flag.String("defense", "baseline", "defense level: baseline, dense-execution, constant-time, noise-injection, padded-envelope")
		workers = flag.Int("workers", -1, "pipeline workers; -1 = GOMAXPROCS, 0 = legacy sequential path")
		seed    = flag.Int64("seed", 0, "pipeline root seed; 0 = scenario seed")
	)
	flag.Parse()

	level, err := repro.ParseDefense(*defName)
	if err != nil {
		log.Fatal(err)
	}
	nw := *workers
	if nw < 0 {
		nw = runtime.GOMAXPROCS(0)
	}

	want := func(id string) bool { return *fig == "all" || *fig == id }

	// One scenario per dataset (at the requested defense level), shared
	// between every figure of that dataset — including the 2b perf-stat
	// panel, so -defense hardens all panels consistently.
	scenarios := map[repro.Dataset]*repro.Scenario{}
	scenario := func(d repro.Dataset) *repro.Scenario {
		if s, ok := scenarios[d]; ok {
			return s
		}
		s, err := repro.NewScenario(repro.ScenarioConfig{Dataset: d, Defense: level})
		check(err)
		scenarios[d] = s
		return s
	}
	mustReport := func(d repro.Dataset) *repro.Report {
		rep, err := scenario(d).Evaluate(repro.EvalConfig{RunsPerClass: *runs, Workers: nw, Seed: *seed})
		check(err)
		return rep
	}

	// Reports are shared between figures of the same dataset.
	var mnistRep, cifarRep *repro.Report
	needMNIST := want("1a") || want("3a") || want("3b")
	needCIFAR := want("1b") || want("4a") || want("4b")

	if needMNIST {
		mnistRep = mustReport(repro.DatasetMNIST)
	}
	if needCIFAR {
		cifarRep = mustReport(repro.DatasetCIFAR)
	}

	if want("1a") {
		check(repro.RenderFigure1(os.Stdout, "Figure 1(a): average cache-misses per category (MNIST)", mnistRep))
		fmt.Println()
	}
	if want("1b") {
		check(repro.RenderFigure1(os.Stdout, "Figure 1(b): average cache-misses per category (CIFAR-10)", cifarRep))
		fmt.Println()
	}
	if want("2b") {
		_, out, err := repro.Figure2b(scenario(repro.DatasetMNIST))
		check(err)
		fmt.Println("Figure 2(b): hardware events during one classification (perf stat layout)")
		fmt.Print(out)
		fmt.Println()
	}
	if want("3a") {
		check(repro.FigureDistributions(os.Stdout, "Figure 3(a): MNIST", mnistRep, repro.EvCacheMisses))
		fmt.Println()
	}
	if want("3b") {
		check(repro.FigureDistributions(os.Stdout, "Figure 3(b): MNIST", mnistRep, repro.EvBranches))
		fmt.Println()
	}
	if want("4a") {
		check(repro.FigureDistributions(os.Stdout, "Figure 4(a): CIFAR-10", cifarRep, repro.EvCacheMisses))
		fmt.Println()
	}
	if want("4b") {
		check(repro.FigureDistributions(os.Stdout, "Figure 4(b): CIFAR-10", cifarRep, repro.EvBranches))
		fmt.Println()
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
