package main

// Byte-invariance regression: jsonResult moved from a bare map[string]any
// (flagged by detlint's wiredigest analyzer) to the named resultJSON
// struct. The struct declares its fields in the alphabetical key order
// encoding/json gave the sorted map, so the emitted bytes must be
// identical — this test pins that equivalence.

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro"
	"repro/internal/attack"
	"repro/internal/march"
)

func sampleAttackResult() *repro.AttackResult {
	cm := func(correct int) *attack.ConfusionMatrix {
		return &attack.ConfusionMatrix{
			Classes: []int{0, 1},
			Matrix:  map[int]map[int]int{0: {0: 3, 1: 1}, 1: {1: 4}},
			Total:   8,
			Correct: correct,
		}
	}
	return &repro.AttackResult{
		Name:        "mnist/baseline",
		Events:      []march.Event{march.EvInstructions, march.EvCacheMisses},
		Classes:     []int{0, 1},
		ProfileRuns: 4,
		AttackRuns:  2,
		K:           3,
		Template:    cm(7),
		KNN:         cm(6),
	}
}

func TestJSONResultBytesMatchLegacyMapEncoding(t *testing.T) {
	r := sampleAttackResult()
	names := make([]string, len(r.Events))
	for i, e := range r.Events {
		names[i] = e.String()
	}
	legacy := map[string]any{
		"name":         r.Name,
		"events":       names,
		"classes":      r.Classes,
		"profile_runs": r.ProfileRuns,
		"attack_runs":  r.AttackRuns,
		"k":            r.K,
		"chance":       r.ChanceLevel(),
		"template": map[string]any{
			"accuracy": r.Template.Accuracy(),
			"matrix":   r.Template.Matrix,
		},
		"knn": map[string]any{
			"accuracy": r.KNN.Accuracy(),
			"matrix":   r.KNN.Matrix,
		},
	}
	want, err := json.MarshalIndent(legacy, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(jsonResult(r), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resultJSON bytes drifted from the legacy map encoding.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
