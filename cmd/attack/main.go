// Command attack runs the end-to-end attack stage: it deploys the trained
// classifier at a chosen defense level, profiles it over the concurrent
// sharded pipeline, fits the Gaussian template and kNN attackers on the
// profiling split, and scores them on held-out attack runs — quantifying
// whether the leakage the Evaluator flags is actually exploitable.
//
// Usage:
//
//	attack -dataset mnist [-defense baseline] [-events base]
//	       [-profile-runs 100] [-attack-runs 60] [-attacker both|template|knn]
//	       [-k 5] [-classes 1,2,3,4] [-workers N] [-seed 1] [-json out.json]
//
// All observations derive from -seed via per-shard seed derivation, so any
// -workers value reproduces byte-identical confusion matrices.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro"
	"repro/internal/hpc"
	"repro/internal/obs"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("attack: ")
	var (
		dsName      = flag.String("dataset", "mnist", "dataset: mnist or cifar")
		defName     = flag.String("defense", "baseline", "defense level: baseline, dense-execution, constant-time, noise-injection, padded-envelope")
		events      = flag.String("events", "base", "event set (base, fig2b, extended) or comma-separated event list")
		profileRuns = flag.Int("profile-runs", 100, "profiling observations per category (the adversary's training budget)")
		attackRuns  = flag.Int("attack-runs", 60, "held-out observations per category the attackers are scored on")
		attacker    = flag.String("attacker", "both", "attacker to report: both, template or knn")
		k           = flag.Int("k", 5, "kNN neighbourhood size")
		classes     = flag.String("classes", "1,2,3,4", "comma-separated category labels")
		workers     = flag.Int("workers", 0, "pipeline workers; 0 = GOMAXPROCS")
		seed        = flag.Int64("seed", 0, "campaign root seed; 0 = scenario seed")
		batch       = flag.Int("batch", 1, "inputs classified per batched replay session; attribution is exact, so results match -batch 1 byte-for-byte")
		jsonPath    = flag.String("json", "", "write the result as JSON to this file")
		tracePath   = flag.String("trace", "", "write a Chrome trace_event timeline of the campaign to this file")
		obsPath     = flag.String("obs", "", "stream telemetry events to this file as JSONL")
	)
	flag.Parse()

	level, err := repro.ParseDefense(*defName)
	if err != nil {
		log.Fatal(err)
	}
	if *attacker != "both" && *attacker != "template" && *attacker != "knn" {
		log.Fatalf("unknown attacker %q (want both, template or knn)", *attacker)
	}
	if *profileRuns < 2 {
		log.Fatalf("-profile-runs %d too small: templates need at least 2 profiling observations per category", *profileRuns)
	}
	if *attackRuns < 1 {
		log.Fatalf("-attack-runs %d too small: need at least 1 held-out observation per category", *attackRuns)
	}
	cls, err := repro.ParseClasses(*classes)
	if err != nil {
		log.Fatal(err)
	}
	evs, err := hpc.ParseEventSpec(*events)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	s, err := repro.NewScenario(repro.ScenarioConfig{Dataset: repro.Dataset(*dsName), Defense: level})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim: %s, defense %s, test accuracy %.3f\n", *dsName, level, s.TestAccuracy)
	fmt.Printf("profiling %d + attacking %d classifications per category for categories %v (%d events, root seed %d)...\n\n",
		*profileRuns, *attackRuns, cls, len(evs), *seed)

	rec, obsFinish, err := obs.FileRecorder(*tracePath, *obsPath, "attack")
	if err != nil {
		log.Fatal(err)
	}

	res, err := s.Attack(ctx, repro.AttackConfig{
		Classes:     cls,
		Events:      evs,
		ProfileRuns: *profileRuns,
		AttackRuns:  *attackRuns,
		K:           *k,
		Workers:     *workers,
		Seed:        *seed,
		Batch:       *batch,
		Obs:         rec,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := obsFinish(); err != nil {
		log.Fatal(err)
	}

	switch *attacker {
	case "both":
		if err := report.AttackSummary(os.Stdout, res); err != nil {
			log.Fatal(err)
		}
	case "template":
		if err := report.Confusion(os.Stdout, "gaussian template attack:", res.Template); err != nil {
			log.Fatal(err)
		}
	case "knn":
		if err := report.Confusion(os.Stdout, fmt.Sprintf("%d-NN attack:", res.K), res.KNN); err != nil {
			log.Fatal(err)
		}
	}
	chance := res.ChanceLevel()
	best := res.Template.Accuracy()
	if res.KNN.Accuracy() > best {
		best = res.KNN.Accuracy()
	}
	fmt.Println()
	switch {
	case best > 2*chance:
		fmt.Printf("verdict: exploitable — best recovery accuracy %.1f%% is over twice chance (%.1f%%)\n", 100*best, 100*chance)
	case best > chance:
		fmt.Printf("verdict: weakly exploitable — best recovery accuracy %.1f%% vs chance %.1f%%\n", 100*best, 100*chance)
	default:
		fmt.Printf("verdict: not exploitable at this budget — best recovery accuracy %.1f%% vs chance %.1f%%\n", 100*best, 100*chance)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonResult(res)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("result written to %s\n", *jsonPath)
	}
}

// resultJSON is the wire shape of an AttackResult. Fields are declared
// in the alphabetical key order encoding/json gives sorted map keys, so
// the emitted bytes match the map[string]any encoding this replaced.
type resultJSON struct {
	AttackRuns  int          `json:"attack_runs"`
	Chance      float64      `json:"chance"`
	Classes     []int        `json:"classes"`
	Events      []string     `json:"events"`
	K           int          `json:"k"`
	KNN         attackerJSON `json:"knn"`
	Name        string       `json:"name"`
	ProfileRuns int          `json:"profile_runs"`
	Template    attackerJSON `json:"template"`
}

// attackerJSON is one attacker's accuracy and confusion matrix.
type attackerJSON struct {
	Accuracy float64             `json:"accuracy"`
	Matrix   map[int]map[int]int `json:"matrix"`
}

// jsonResult flattens an AttackResult into a JSON-friendly shape with
// event names instead of internal event ids.
func jsonResult(r *repro.AttackResult) resultJSON {
	names := make([]string, len(r.Events))
	for i, e := range r.Events {
		names[i] = e.String()
	}
	return resultJSON{
		AttackRuns:  r.AttackRuns,
		Chance:      r.ChanceLevel(),
		Classes:     r.Classes,
		Events:      names,
		K:           r.K,
		KNN:         attackerJSON{Accuracy: r.KNN.Accuracy(), Matrix: r.KNN.Matrix},
		Name:        r.Name,
		ProfileRuns: r.ProfileRuns,
		Template:    attackerJSON{Accuracy: r.Template.Accuracy(), Matrix: r.Template.Matrix},
	}
}
