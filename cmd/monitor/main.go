// Command monitor runs the streaming leakage monitor against one
// dataset: instead of collecting the full trace budget and scoring it
// afterwards (the evaluate command), it consumes profile windows as the
// pipeline emits them, drives sequential hypothesis tests under an
// alpha-spending boundary, and stops the campaign at the first
// detection — printing how many monitored classifications the verdict
// cost. A campaign that runs to exhaustion prints the ordinary batch
// report, byte-identical to evaluate on the same configuration.
//
// Usage:
//
//	monitor -dataset mnist [-budget 300] [-classes 1,2,3,4] [-defense baseline]
//	        [-alpha 0.05] [-events base] [-workers 1] [-seed 0] [-batch 1]
//	        [-mann-whitney] [-min-samples 8] [-no-stop] [-tenants 0] [-quantum 5000]
//	        [-json] [-csv out.csv]
//	        [-processes N] [-worker-bin PATH] [-journal BASE] [-fabric-tcp]
//
// The consumed window stream is deterministic, so the detection — and
// its trace count — is identical at any -workers or -processes value.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"repro"
	"repro/internal/hpc"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("monitor: ")
	var (
		dsName  = flag.String("dataset", "mnist", "dataset: mnist or cifar")
		budget  = flag.Int("budget", 300, "trace budget: maximum monitored classifications per category")
		classes = flag.String("classes", "1,2,3,4", "comma-separated category labels")
		defName = flag.String("defense", "baseline", "defense level: baseline, dense-execution, constant-time, noise-injection, padded-envelope")
		alpha   = flag.Float64("alpha", 0.05, "overall significance level the spending boundary distributes")
		events  = flag.String("events", "base", "event set (base, fig2b, extended) or comma-separated event list")
		workers = flag.Int("workers", 1, "pipeline workers; -1 = GOMAXPROCS (the window stream is worker-count-invariant)")
		seed    = flag.Int64("seed", 0, "pipeline root seed; 0 = scenario seed")
		batch   = flag.Int("batch", 1, "runs per batched replay session; windows — and monitor looks — arrive at this cadence")

		mannWhitney = flag.Bool("mann-whitney", false, "monitor with the sequential rank-sum test instead of Welch's t-test")
		minSamples  = flag.Int("min-samples", 8, "per-side sample floor before a hypothesis takes its first look")
		noStop      = flag.Bool("no-stop", false, "disable early stopping: always run to exhaustion and print the batch report")
		tenants     = flag.Int("tenants", 0, "≥2 co-locates a second classifier on every shard core, interleaved quantum by quantum")
		quantum     = flag.Uint64("quantum", 5000, "instruction quantum of the tenant interleaving")

		jsonOut = flag.Bool("json", false, "print the monitor report as JSON")
		csvPath = flag.String("csv", "", "on exhaustion, write raw distributions to this CSV file (byte-identical to evaluate's)")

		processes = flag.Int("processes", 0, "shardworker OS processes via the distributed audit fabric; 0 = in-process")
		workerBin = flag.String("worker-bin", "", "shardworker binary for -processes (default $REPRO_SHARDWORKER)")
		journal   = flag.String("journal", "", "shard-completion journal base path; reruns resume finished shards")
		fabricTCP = flag.Bool("fabric-tcp", false, "dispatch fabric shards over loopback TCP instead of pipes")

		tracePath = flag.String("trace", "", "write a Chrome trace_event timeline of the campaign to this file")
		obsPath   = flag.String("obs", "", "stream telemetry events to this file as JSONL")
	)
	flag.Parse()

	level, err := repro.ParseDefense(*defName)
	if err != nil {
		log.Fatal(err)
	}
	cls, err := repro.ParseClasses(*classes)
	if err != nil {
		log.Fatal(err)
	}
	evs, err := hpc.ParseEventSpec(*events)
	if err != nil {
		log.Fatal(err)
	}
	nw := *workers
	if nw < 0 {
		nw = runtime.GOMAXPROCS(0)
	}

	s, err := repro.NewScenario(repro.ScenarioConfig{Dataset: repro.Dataset(*dsName), Defense: level})
	if err != nil {
		log.Fatal(err)
	}
	if !*jsonOut {
		fmt.Printf("scenario: %s, defense %s, test accuracy %.3f\n", *dsName, level, s.TestAccuracy)
		fmt.Printf("monitoring up to %d classifications per category for categories %v (α %g, %d workers, root seed %d)...\n",
			*budget, cls, *alpha, nw, *seed)
	}

	rec, obsFinish, err := obs.FileRecorder(*tracePath, *obsPath, "monitor")
	if err != nil {
		log.Fatal(err)
	}

	rep, err := s.MonitorCtx(context.Background(), repro.MonitorConfig{
		Classes: cls, Events: evs, Budget: *budget, Alpha: *alpha,
		Workers: nw, Seed: *seed, Batch: *batch,
		MannWhitney: *mannWhitney, MinSamples: *minSamples, NoStop: *noStop,
		Tenants: *tenants, Quantum: *quantum,
		Processes: *processes,
		Fabric:    repro.FabricConfig{WorkerBin: *workerBin, Journal: *journal, TCP: *fabricTCP},
		Obs:       rec,
	})
	if err == nil {
		err = obsFinish()
	}
	if err != nil {
		var c *pipeline.Cancelled
		if errors.As(err, &c) {
			// Interrupted, not misconfigured: no windows arriving is the
			// campaign being cut short, never an empty budget.
			log.Fatalf("campaign interrupted during %s: %v", c.Stage, c.Err)
		}
		log.Fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
	} else if rep.Stopped {
		d := rep.Detection
		fmt.Printf("\nDETECTED after %d traces (%d on the pair): %s distinguishes category %d from %d (stat %.3f, p %.3g)\n",
			d.Traces, d.PairTraces, d.EventName, d.ClassA, d.ClassB, d.Stat, d.P)
		fmt.Printf("budget saved: %d of %d traces unspent\n", len(cls)**budget-rep.TracesSeen, len(cls)**budget)
	} else {
		fmt.Printf("\nbudget exhausted after %d traces without a sequential detection\n", rep.TracesSeen)
		fmt.Println("\nper-category event summaries:")
		repro.RenderSummary(os.Stdout, rep.Report)
		fmt.Println("\nt-test results (Table 1/2 layout):")
		if err := repro.TableTTests(os.Stdout, rep.Report); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		repro.RenderAlarms(os.Stdout, rep.Report)
	}

	if *csvPath != "" {
		if rep.Report == nil {
			log.Fatal("-csv needs the exhaustion report; the campaign stopped early (use -no-stop)")
		}
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := repro.WriteCSV(f, rep.Report); err != nil {
			log.Fatal(err)
		}
		if !*jsonOut {
			fmt.Printf("raw distributions written to %s\n", *csvPath)
		}
	}
}
