package main

// Meta-tests driving the real detlint binary end to end: the clean
// fixture must produce zero findings and exit 0, the dirty fixture must
// reproduce testdata/dirty/expected.txt byte for byte and exit 1, and
// the -V handshake must answer the go vet tool protocol.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildDetlint compiles the binary once per test process.
func buildDetlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "detlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building detlint: %v\n%s", err, out)
	}
	return bin
}

// testdataDir resolves internal/lint/testdata relative to this package.
func testdataDir(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("..", "..", "internal", "lint", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestDetlintCleanFixture(t *testing.T) {
	bin := buildDetlint(t)
	cmd := exec.Command(bin, "-dir", "clean")
	cmd.Dir = testdataDir(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("detlint -dir clean: want exit 0, got %v\n%s", err, out)
	}
	if len(out) != 0 {
		t.Fatalf("detlint -dir clean: want no output, got:\n%s", out)
	}
}

func TestDetlintDirtyFixture(t *testing.T) {
	bin := buildDetlint(t)
	dir := testdataDir(t)
	cmd := exec.Command(bin, "-dir", "dirty")
	cmd.Dir = dir
	out, err := cmd.Output()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("detlint -dir dirty: want exit 1, got %v\n%s", err, out)
	}
	want, err := os.ReadFile(filepath.Join(dir, "dirty", "expected.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(want) {
		t.Errorf("detlint -dir dirty diagnostics drifted.\n--- got ---\n%s--- want ---\n%s", out, want)
	}
}

func TestDetlintVersionHandshake(t *testing.T) {
	bin := buildDetlint(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("detlint -V=full: %v", err)
	}
	// The go command requires "<name> version <version>..." on one line.
	fields := strings.Fields(string(out))
	if len(fields) < 3 || fields[1] != "version" {
		t.Fatalf("detlint -V=full: want %q shape, got %q", "detlint version <v>", string(out))
	}
}

func TestDetlintAnalyzerSubset(t *testing.T) {
	bin := buildDetlint(t)
	dir := testdataDir(t)

	// Restricted to maporder, the other analyzers' findings vanish; the
	// maporder finding and the (subset-independent) malformed-directive
	// diagnostic remain.
	cmd := exec.Command(bin, "-run", "maporder", "-dir", "dirty")
	cmd.Dir = dir
	out, _ := cmd.Output()
	var got []string
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		got = append(got, line[strings.Index(line, ": ")+2:])
	}
	if len(got) != 2 || !strings.HasPrefix(got[0], "maporder:") || !strings.HasPrefix(got[1], "detlint:") {
		t.Errorf("-run maporder: want the maporder finding plus the malformed-directive diagnostic, got:\n%s", out)
	}

	// An unknown analyzer name is a usage error (exit 2).
	cmd = exec.Command(bin, "-run", "nosuch", "-dir", "dirty")
	cmd.Dir = dir
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Errorf("-run nosuch: want exit 2, got %v", err)
	}
}
