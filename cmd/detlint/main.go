// Command detlint runs this repository's determinism-and-hot-path
// analyzer suite (internal/lint) over Go packages.
//
// Standalone:
//
//	detlint ./...              lint package patterns (via go list)
//	detlint -dir path/to/dir   lint a bare directory of Go files
//	                           (works on testdata trees go list ignores;
//	                           path-scoped analyzers run unconditionally)
//	detlint -run maporder,seedpurity ./...   subset of analyzers
//
// As a vet tool (shares diagnostics with editors and CI):
//
//	go vet -vettool=$(which detlint) ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet's tool protocol probes -V=full first and then invokes the
	// tool with a *.cfg argument; both bypass normal flag handling.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Printf("detlint version detlint-1.0\n")
		return 0
	}
	// The go command also probes `-flags` for the tool's flag definitions
	// (a JSON array); detlint exposes none to the vet driver.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVetTool(args[0])
	}

	fs := flag.NewFlagSet("detlint", flag.ContinueOnError)
	dir := fs.String("dir", "", "lint a bare directory of Go files instead of package patterns")
	runList := fs.String("run", "", "comma-separated analyzer subset (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := selectAnalyzers(*runList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 2
	}

	var pkgs []*lint.Package
	if *dir != "" {
		if fs.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "detlint: -dir and package patterns are mutually exclusive")
			return 2
		}
		pkg, err := lint.LoadDir(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			return 2
		}
		pkgs = []*lint.Package{pkg}
	} else {
		patterns := fs.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		if pkgs, err = lint.Load(".", patterns...); err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			return 2
		}
	}

	diags := lint.Run(pkgs, analyzers)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		d.Pos.Filename = relative(cwd, d.Pos.Filename)
		fmt.Println(d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers resolves a comma-separated subset, or all when empty.
func selectAnalyzers(spec string) ([]*lint.Analyzer, error) {
	all := lint.All()
	if spec == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(spec, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// relative shortens a path to cwd-relative form when that is shorter.
func relative(cwd, path string) string {
	if cwd == "" {
		return path
	}
	if rel, err := filepath.Rel(cwd, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
