package main

// The `go vet -vettool` protocol, reimplemented on the stdlib (the
// canonical implementation lives in golang.org/x/tools/go/analysis/
// unitchecker, which this dependency-free module cannot import). The go
// command drives the tool once per package:
//
//  1. `detlint -V=full` — version handshake for the build cache
//     (handled in run());
//  2. `detlint <unit>.cfg` — analyze one package unit. The cfg is JSON
//     describing the package's files, its import map and the export-data
//     file of every dependency. The tool must write cfg.VetxOutput (the
//     facts file the go command caches; detlint's analyzers are
//     fact-free, so a fixed payload suffices) and report diagnostics on
//     stderr with a non-zero exit.
//
// The type-check path reuses internal/lint's gc-export importer: the cfg
// PackageFile map plays the role `go list -export` plays standalone.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"

	"repro/internal/lint"
)

// vetConfig mirrors the fields of the go command's vet config file that
// the tool consumes (the schema unitchecker.Config documents).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVetTool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "detlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The facts file must exist for the go command to cache the unit,
	// findings or not. detlint exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("detlint-no-facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Vet also drives test units: pkg.test mains, bracketed variants and
	// the test-augmented package build (same import path, _test.go files
	// included). detlint's invariants govern shipped campaign code only —
	// tests legitimately use wall clocks and ad-hoc seeds — so those
	// units succeed after the handshake obligations above.
	if strings.HasSuffix(cfg.ImportPath, ".test") || strings.Contains(cfg.ImportPath, " [") {
		return 0
	}
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			return 0
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "detlint:", err)
			return 1
		}
		files = append(files, f)
	}

	// Dependency export data comes straight from the cfg; the import map
	// translates source-level paths before lookup.
	pkg, err := lint.CheckUnit(fset, cfg.ImportPath, files, func(path string) (string, bool) {
		if mapped, found := cfg.ImportMap[path]; found {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		return file, ok
	})
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 1
	}

	diags := lint.Run([]*lint.Package{pkg}, lint.All())
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
