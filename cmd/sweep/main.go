// Command sweep runs a grid of leakage-assessment campaigns — trace
// budgets × event sets × defenses (× datasets) — on the concurrent
// sharded evaluation pipeline, and emits the grid as CSV or JSON. It
// answers the practical assessment questions a single campaign cannot:
// how many traces until the Evaluator's alarm fires, which events leak,
// and which hardening level silences them.
//
// Usage:
//
//	sweep [-datasets mnist] [-defenses baseline,constant-time] [-runs 50,100,200]
//	      [-events "base;fig2b"] [-classes 1,2,3,4] [-alpha 0.05]
//	      [-workers N] [-cell-parallel 2] [-seed 1] [-attack] [-attack-runs N]
//	      [-archid] [-archid-runs N] [-topo] [-topo-holdout N]
//	      [-processes N] [-worker-bin PATH] [-journal BASE] [-fabric-tcp]
//	      [-format csv|json] [-o grid.csv]
//
// Event sets are separated by semicolons; each set is a named set (base,
// fig2b, extended) or a comma-separated perf-style event list. Sets wider
// than the 6 HPC registers are split into register-sized campaign groups
// automatically. All randomness derives from -seed, so a sweep is
// reproducible regardless of -workers or -cell-parallel.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"repro"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var (
		datasets     = flag.String("datasets", "mnist", "comma-separated datasets: mnist, cifar")
		defenses     = flag.String("defenses", "baseline,dense-execution,constant-time,noise-injection", "comma-separated defense levels")
		runs         = flag.String("runs", "100,200,300", "comma-separated trace budgets (classifications per category)")
		events       = flag.String("events", "base", "semicolon-separated event sets (named set or comma list each)")
		classes      = flag.String("classes", "1,2,3,4", "comma-separated category labels")
		alpha        = flag.Float64("alpha", 0.05, "significance level")
		workers      = flag.Int("workers", 0, "pipeline workers per cell; 0 = GOMAXPROCS")
		cellParallel = flag.Int("cell-parallel", 2, "grid cells evaluated concurrently")
		seed         = flag.Int64("seed", 1, "sweep root seed")
		batch        = flag.Int("batch", 1, "inputs classified per batched replay session; cell results are byte-identical at any batch size")
		attackStage  = flag.Bool("attack", false, "run the end-to-end attack stage per cell (template_acc/knn_acc columns)")
		attackRuns   = flag.Int("attack-runs", 0, "held-out attack observations per class (0 = half the cell's budget, min 10)")
		archidStage  = flag.Bool("archid", false, "run the architecture-fingerprinting stage per cell (archid_template_acc/archid_knn_acc columns)")
		archidRuns   = flag.Int("archid-runs", 0, "held-out fingerprinting observations per architecture (0 = half the cell's budget, min 10)")
		topoStage    = flag.Bool("topo", false, "run the topology-recovery stage per cell (topo_exact_rate/topo_kind_acc columns)")
		topoHoldout  = flag.Int("topo-holdout", 0, "held-out victim architectures per cell (0 = topo default)")
		format       = flag.String("format", "csv", "output format: csv or json")
		out          = flag.String("o", "", "output file (default stdout)")
		perTrain     = flag.Int("train", 0, "per-class training images (0 = paper default)")
		perTest      = flag.Int("test", 0, "per-class test images (0 = paper default)")
		epochs       = flag.Int("epochs", 0, "training epochs (0 = paper default)")

		processes = flag.Int("processes", 0, "shardworker OS processes per cell via the distributed audit fabric; 0 = in-process")
		workerBin = flag.String("worker-bin", "", "shardworker binary for -processes (default $REPRO_SHARDWORKER)")
		journal   = flag.String("journal", "", "shard-completion journal base path; reruns resume finished shards")
		fabricTCP = flag.Bool("fabric-tcp", false, "dispatch fabric shards over loopback TCP instead of pipes")

		tracePath = flag.String("trace", "", "write a Chrome trace_event timeline of the sweep to this file")
		obsPath   = flag.String("obs", "", "stream telemetry events to this file as JSONL")
	)
	flag.Parse()
	if *format != "csv" && *format != "json" {
		log.Fatalf("unknown format %q (want csv or json)", *format)
	}

	cls, err := repro.ParseClasses(*classes)
	if err != nil {
		log.Fatal(err)
	}
	rec, obsFinish, err := obs.FileRecorder(*tracePath, *obsPath, "sweep")
	if err != nil {
		log.Fatal(err)
	}
	cfg := repro.SweepConfig{
		TraceBudgets: parseInts(*runs),
		EventSets:    splitNonEmpty(*events, ";"),
		Classes:      cls,
		Alpha:        *alpha,
		Workers:      *workers,
		Batch:        *batch,
		CellParallel: *cellParallel,
		Seed:         *seed,
		Attack:       *attackStage,
		AttackRuns:   *attackRuns,
		ArchID:       *archidStage,
		ArchIDRuns:   *archidRuns,
		Topo:         *topoStage,
		TopoHoldout:  *topoHoldout,
		Processes:    *processes,
		Fabric:       repro.FabricConfig{WorkerBin: *workerBin, Journal: *journal, TCP: *fabricTCP},
		Obs:          rec,
		Scenario: repro.ScenarioConfig{
			PerClassTrain: *perTrain,
			PerClassTest:  *perTest,
			Epochs:        *epochs,
		},
	}
	for _, d := range splitNonEmpty(*datasets, ",") {
		cfg.Datasets = append(cfg.Datasets, repro.Dataset(d))
	}
	for _, name := range splitNonEmpty(*defenses, ",") {
		level, err := repro.ParseDefense(name)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Defenses = append(cfg.Defenses, level)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	total := len(cfg.Datasets) * len(cfg.Defenses) * len(cfg.TraceBudgets) * len(cfg.EventSets)
	fmt.Fprintf(os.Stderr, "sweep: %d cells (%d datasets × %d defenses × %d budgets × %d event sets)\n",
		total, len(cfg.Datasets), len(cfg.Defenses), len(cfg.TraceBudgets), len(cfg.EventSets))
	done := 0
	grid, err := repro.SweepProgress(ctx, cfg, func(r repro.SweepResult) {
		done++
		attackInfo := ""
		if r.AttackRuns > 0 {
			attackInfo = fmt.Sprintf(", template %.0f%% / knn %.0f%%", 100*r.TemplateAcc, 100*r.KNNAcc)
		}
		if r.ArchIDRuns > 0 {
			attackInfo += fmt.Sprintf(", archid %.0f%%/%.0f%%", 100*r.ArchIDTemplateAcc, 100*r.ArchIDKNNAcc)
		}
		if r.TopoVictims > 0 {
			attackInfo += fmt.Sprintf(", topo %.0f%%/%.0f%%", 100*r.TopoExactRate, 100*r.TopoKindAcc)
		}
		fmt.Fprintf(os.Stderr, "  [%d/%d] %s/%s runs=%d events=%s: %d alarms%s (%.0f ms)\n",
			done, total, r.Dataset, r.Defense, r.Runs, r.EventSet, r.Alarms, attackInfo, float64(r.WallMS))
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := obsFinish(); err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if *format == "json" {
		err = grid.WriteJSON(w)
	} else {
		err = grid.WriteCSV(w)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "sweep: grid written to %s\n", *out)
	}
}

func parseInts(s string) []int {
	var out []int
	for _, part := range splitNonEmpty(s, ",") {
		n, err := strconv.Atoi(part)
		if err != nil {
			log.Fatalf("bad integer list %q: %v", s, err)
		}
		out = append(out, n)
	}
	return out
}

func splitNonEmpty(s, sep string) []string {
	var out []string
	for _, part := range strings.Split(s, sep) {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
