// Command calibrate runs the reproduction's shape check on both datasets:
// it rebuilds the scenarios, reruns the Table 1/2 campaigns, and verifies
// the qualitative targets (cache-misses separate every category pair,
// branches separate at most a few). Use it after changing the cache
// geometry, the noise model, or the runtime overhead constants.
//
// Usage:
//
//	calibrate [-runs 300] [-workers N] [-seed 1]
//
// Campaigns run on the concurrent sharded pipeline by default (-workers -1
// = GOMAXPROCS, 0 = the legacy sequential path, matching cmd/evaluate);
// the shape verdict is identical at any worker count for a fixed -seed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("calibrate: ")
	var (
		runs    = flag.Int("runs", 300, "classifications per category")
		workers = flag.Int("workers", -1, "pipeline workers; -1 = GOMAXPROCS, 0 = legacy sequential path")
		seed    = flag.Int64("seed", 0, "pipeline root seed; 0 = scenario seed")
	)
	flag.Parse()
	nw := *workers
	if nw < 0 {
		nw = runtime.GOMAXPROCS(0)
	}

	allOK := true
	for _, d := range []repro.Dataset{repro.DatasetMNIST, repro.DatasetCIFAR} {
		s, err := repro.DefaultScenario(d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s (test accuracy %.3f) ==\n", d, s.TestAccuracy)
		rep, err := s.Evaluate(repro.EvalConfig{RunsPerClass: *runs, Workers: nw, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		if err := repro.TableTTests(os.Stdout, rep); err != nil {
			log.Fatal(err)
		}
		ok, findings := repro.ShapeCheck(rep)
		for _, f := range findings {
			fmt.Println("  ", f)
		}
		if !ok {
			allOK = false
		}
		fmt.Println()
	}
	if !allOK {
		fmt.Println("calibration FAILED: shapes differ from the paper")
		os.Exit(1)
	}
	fmt.Println("calibration OK: both datasets match the paper's shape")
}
