// Command calibrate runs the reproduction's shape check on both datasets:
// it rebuilds the scenarios, reruns the Table 1/2 campaigns, and verifies
// the qualitative targets (cache-misses separate every category pair,
// branches separate at most a few). Use it after changing the cache
// geometry, the noise model, or the runtime overhead constants.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("calibrate: ")
	runs := flag.Int("runs", 300, "classifications per category")
	flag.Parse()

	allOK := true
	for _, d := range []repro.Dataset{repro.DatasetMNIST, repro.DatasetCIFAR} {
		s, err := repro.DefaultScenario(d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s (test accuracy %.3f) ==\n", d, s.TestAccuracy)
		rep, err := s.Evaluate(repro.EvalConfig{RunsPerClass: *runs})
		if err != nil {
			log.Fatal(err)
		}
		if err := repro.TableTTests(os.Stdout, rep); err != nil {
			log.Fatal(err)
		}
		ok, findings := repro.ShapeCheck(rep)
		for _, f := range findings {
			fmt.Println("  ", f)
		}
		if !ok {
			allOK = false
		}
		fmt.Println()
	}
	if !allOK {
		fmt.Println("calibration FAILED: shapes differ from the paper")
		os.Exit(1)
	}
	fmt.Println("calibration OK: both datasets match the paper's shape")
}
