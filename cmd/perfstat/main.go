// Command perfstat emulates the paper's measurement interface:
//
//	perf stat -e <event_name> -p <process_id>
//
// It deploys the instrumented CNN classifier as a simulated process,
// attaches a PMU to it by pid, observes one classification, and prints the
// counts in perf-stat layout — reproducing Figure 2(b), including the
// multiplexing of 8 requested events onto 6 HPC registers.
//
// Usage:
//
//	perfstat [-dataset mnist] [-defense baseline] [-seed 1]
//	         [-e branches,cache-misses,...] [-runs 1]
//
// -defense (repro.ParseDefense names) and -seed select the deployed
// classifier exactly as the evaluation and attack pipelines would build
// it; there is no -workers flag because perfstat attaches to the single
// deployed process, like real `perf stat -p`.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro"
	"repro/internal/hpc"
	"repro/internal/march"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("perfstat: ")
	var (
		dsName  = flag.String("dataset", "mnist", "dataset: mnist or cifar")
		defName = flag.String("defense", "baseline", "defense level: baseline, dense-execution, constant-time, noise-injection, padded-envelope")
		seed    = flag.Int64("seed", 0, "scenario seed; 0 = default")
		evList  = flag.String("e", strings.Join(eventNames(), ","), "comma-separated event list")
		runs    = flag.Int("runs", 1, "classifications to observe (averaged)")
	)
	flag.Parse()

	level, err := repro.ParseDefense(*defName)
	if err != nil {
		log.Fatal(err)
	}
	s, err := repro.NewScenario(repro.ScenarioConfig{
		Dataset: repro.Dataset(*dsName),
		Defense: level,
		Seed:    *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	events, err := hpc.ParseEventList(*evList)
	if err != nil {
		log.Fatal(err)
	}

	// Deploy the classifier as a process and attach by pid, as the
	// paper's Evaluator does.
	registry := hpc.NewRegistry()
	proc, err := registry.Spawn("cnn-classifier", s.Engine)
	if err != nil {
		log.Fatal(err)
	}
	pmu, err := registry.Attach(proc.PID, hpc.DefaultCounters)
	if err != nil {
		log.Fatal(err)
	}
	if err := pmu.Program(events...); err != nil {
		log.Fatal(err)
	}
	groups := (len(events) + pmu.Registers() - 1) / pmu.Registers()
	slices := groups * *runs
	if slices < 1 {
		slices = 1
	}
	pools, err := s.ClassPools(1)
	if err != nil {
		log.Fatal(err)
	}
	imgs := pools[1]

	fmt.Printf("attached to pid %d (%s)\n", proc.PID, proc.Name)
	if pmu.Multiplexed() {
		fmt.Printf("note: %d events on %d registers -> multiplexing across %d groups (scaled counts)\n",
			len(events), pmu.Registers(), groups)
	}
	var classifyErr error
	prof, err := pmu.Measure(slices, func(i int) {
		if _, err := s.Target.Classify(imgs[i%len(imgs)]); err != nil {
			classifyErr = err
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	if classifyErr != nil {
		log.Fatal(classifyErr)
	}
	perRun := hpc.Profile{}
	for e, v := range prof {
		perRun[e] = v / float64(slices)
	}
	fmt.Printf("\n Performance counter stats for one classification (pid %d):\n\n", proc.PID)
	fmt.Print(hpc.FormatStat(perRun))
}

func eventNames() []string {
	var names []string
	for _, e := range march.AllEvents() {
		names = append(names, e.String())
	}
	return names
}
