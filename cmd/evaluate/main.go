// Command evaluate runs the paper's full evaluation campaign against one
// dataset: it trains the CNN, deploys it instrumented on the simulated
// core, collects per-category HPC distributions, runs the pairwise Welch
// t-tests and prints the Table 1/2 layout plus any alarms.
//
// Usage:
//
//	evaluate -dataset mnist [-runs 300] [-classes 1,2,3,4] [-defense baseline]
//	         [-alpha 0.05] [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("evaluate: ")
	var (
		dsName  = flag.String("dataset", "mnist", "dataset: mnist or cifar")
		runs    = flag.Int("runs", 300, "monitored classifications per category")
		classes = flag.String("classes", "1,2,3,4", "comma-separated category labels")
		defName = flag.String("defense", "baseline", "defense level: baseline, dense-execution, constant-time, noise-injection")
		alpha   = flag.Float64("alpha", 0.05, "significance level")
		csvPath = flag.String("csv", "", "write raw distributions to this CSV file")
	)
	flag.Parse()

	level, err := parseDefense(*defName)
	if err != nil {
		log.Fatal(err)
	}
	cls, err := parseClasses(*classes)
	if err != nil {
		log.Fatal(err)
	}

	s, err := repro.NewScenario(repro.ScenarioConfig{Dataset: repro.Dataset(*dsName), Defense: level})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario: %s, defense %s, test accuracy %.3f\n", *dsName, level, s.TestAccuracy)
	fmt.Printf("collecting %d classifications per category for categories %v...\n", *runs, cls)

	rep, err := s.Evaluate(repro.EvalConfig{Classes: cls, RunsPerClass: *runs, Alpha: *alpha})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nper-category event summaries:")
	repro.RenderSummary(os.Stdout, rep)
	fmt.Println("\nt-test results (Table 1/2 layout):")
	if err := repro.TableTTests(os.Stdout, rep); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	repro.RenderAlarms(os.Stdout, rep)

	ok, findings := repro.ShapeCheck(rep)
	fmt.Println("\nreproduction shape check:")
	for _, f := range findings {
		fmt.Println("  ", f)
	}
	if level == repro.DefenseBaseline && !ok {
		fmt.Println("   WARNING: baseline shape differs from the paper")
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := repro.WriteCSV(f, rep); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("raw distributions written to %s\n", *csvPath)
	}
}

func parseDefense(s string) (repro.DefenseLevel, error) {
	switch s {
	case "baseline":
		return repro.DefenseBaseline, nil
	case "dense-execution":
		return repro.DefenseDense, nil
	case "constant-time":
		return repro.DefenseConstantTime, nil
	case "noise-injection":
		return repro.DefenseNoiseInjection, nil
	default:
		return 0, fmt.Errorf("unknown defense %q", s)
	}
}

func parseClasses(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad class list %q: %w", s, err)
		}
		out = append(out, n)
	}
	return out, nil
}
