// Command evaluate runs the paper's full evaluation campaign against one
// dataset: it trains the CNN, deploys it instrumented on the simulated
// core, collects per-category HPC distributions, runs the pairwise Welch
// t-tests and prints the Table 1/2 layout plus any alarms.
//
// Usage:
//
//	evaluate -dataset mnist [-runs 300] [-classes 1,2,3,4] [-defense baseline]
//	         [-alpha 0.05] [-csv out.csv] [-events base] [-workers N] [-seed 1]
//	         [-processes N] [-worker-bin PATH] [-journal BASE] [-fabric-tcp]
//
// With -workers ≥ 1 the campaign runs on the concurrent sharded pipeline:
// collection fans out over the worker pool with deterministic per-shard
// seeds derived from -seed, so any worker count reproduces the same
// report. -workers 0 keeps the legacy sequential path.
//
// With -processes ≥ 1 the same shard plan is executed by shardworker OS
// processes through the distributed audit fabric; reports stay
// byte-identical at any process count, and -journal makes an interrupted
// campaign resumable from its completed shards.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"repro"
	"repro/internal/hpc"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("evaluate: ")
	var (
		dsName  = flag.String("dataset", "mnist", "dataset: mnist or cifar")
		runs    = flag.Int("runs", 300, "monitored classifications per category")
		classes = flag.String("classes", "1,2,3,4", "comma-separated category labels")
		defName = flag.String("defense", "baseline", "defense level: baseline, dense-execution, constant-time, noise-injection, padded-envelope")
		alpha   = flag.Float64("alpha", 0.05, "significance level")
		csvPath = flag.String("csv", "", "write raw distributions to this CSV file")
		events  = flag.String("events", "base", "event set (base, fig2b, extended) or comma-separated event list")
		workers = flag.Int("workers", 0, "pipeline workers; 0 = legacy sequential path, -1 = GOMAXPROCS")
		seed    = flag.Int64("seed", 0, "pipeline root seed for per-shard RNG derivation; 0 = scenario seed")
		batch   = flag.Int("batch", 1, "inputs classified per batched replay session; attribution is exact, so any batch size reproduces -batch 1 byte-for-byte")

		processes = flag.Int("processes", 0, "shardworker OS processes via the distributed audit fabric; 0 = in-process")
		workerBin = flag.String("worker-bin", "", "shardworker binary for -processes (default $REPRO_SHARDWORKER)")
		journal   = flag.String("journal", "", "shard-completion journal base path; reruns resume finished shards")
		fabricTCP = flag.Bool("fabric-tcp", false, "dispatch fabric shards over loopback TCP instead of pipes")

		tracePath = flag.String("trace", "", "write a Chrome trace_event timeline of the campaign to this file (open in Perfetto / chrome://tracing, validate with obsview -check)")
		obsPath   = flag.String("obs", "", "stream telemetry events to this file as JSONL")
	)
	flag.Parse()

	level, err := repro.ParseDefense(*defName)
	if err != nil {
		log.Fatal(err)
	}
	cls, err := repro.ParseClasses(*classes)
	if err != nil {
		log.Fatal(err)
	}
	evs, err := hpc.ParseEventSpec(*events)
	if err != nil {
		log.Fatal(err)
	}
	nw := *workers
	if nw < 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	grouped := len(evs) > hpc.DefaultCounters
	if grouped && nw == 0 {
		// Event sets wider than the register file need one campaign per
		// register-sized group; that path runs on the pipeline.
		nw = 1
	}

	s, err := repro.NewScenario(repro.ScenarioConfig{Dataset: repro.Dataset(*dsName), Defense: level})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario: %s, defense %s, test accuracy %.3f\n", *dsName, level, s.TestAccuracy)
	switch {
	case grouped:
		fmt.Printf("collecting %d classifications per category for categories %v (%d events in %d register groups, %d pipeline workers, root seed %d)...\n",
			*runs, cls, len(evs), (len(evs)+hpc.DefaultCounters-1)/hpc.DefaultCounters, nw, *seed)
	case nw > 0:
		fmt.Printf("collecting %d classifications per category for categories %v (%d pipeline workers, root seed %d)...\n",
			*runs, cls, nw, *seed)
	default:
		fmt.Printf("collecting %d classifications per category for categories %v...\n", *runs, cls)
	}

	// Telemetry is observational output only: the report below is
	// byte-identical whether or not a recorder is armed.
	rec, obsFinish, err := obs.FileRecorder(*tracePath, *obsPath, "evaluate")
	if err != nil {
		log.Fatal(err)
	}

	evalCfg := repro.EvalConfig{
		Classes: cls, Events: evs, RunsPerClass: *runs, Alpha: *alpha,
		Workers: nw, Seed: *seed, Batch: *batch,
		Processes: *processes,
		Fabric:    repro.FabricConfig{WorkerBin: *workerBin, Journal: *journal, TCP: *fabricTCP},
		Obs:       rec,
	}
	var rep *repro.Report
	if grouped {
		rep, err = s.EvaluateGrouped(context.Background(), level, evalCfg)
	} else {
		rep, err = s.Evaluate(evalCfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := obsFinish(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nper-category event summaries:")
	repro.RenderSummary(os.Stdout, rep)
	fmt.Println("\nt-test results (Table 1/2 layout):")
	if err := repro.TableTTests(os.Stdout, rep); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	repro.RenderAlarms(os.Stdout, rep)

	ok, findings := repro.ShapeCheck(rep)
	fmt.Println("\nreproduction shape check:")
	for _, f := range findings {
		fmt.Println("  ", f)
	}
	if level == repro.DefenseBaseline && !ok {
		fmt.Println("   WARNING: baseline shape differs from the paper")
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := repro.WriteCSV(f, rep); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("raw distributions written to %s\n", *csvPath)
	}
}
