package main

// Byte-invariance regression: jsonResult moved from a bare map[string]any
// (flagged by detlint's wiredigest analyzer) to the named resultJSON
// struct, whose field order mirrors the sorted map keys. The emitted
// bytes must be identical.

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro"
	"repro/internal/march"
	"repro/internal/nn"
	"repro/internal/topo"
)

func sampleTopoResult() *repro.TopoResult {
	return &repro.TopoResult{
		Name:                "mnist-topo/baseline",
		Padded:              false,
		Seed:                3,
		Quantum:             5000,
		Events:              []march.Event{march.EvInstructions, march.EvL1DLoads},
		TrainSpecs:          []nn.SpecInfo{{}, {}},
		HoldoutSpecs:        []nn.SpecInfo{{}},
		Kinds:               []string{"conv", "dense"},
		ChanceKind:          0.5,
		Victims:             []topo.VictimResult{{}},
		ExactCountRate:      0.75,
		MeanKindAccuracy:    0.9,
		MeanParamRelErr:     0.1,
		MeanFootprintRelErr: 0.05,
	}
}

func TestJSONResultBytesMatchLegacyMapEncoding(t *testing.T) {
	r := sampleTopoResult()
	names := make([]string, len(r.Events))
	for i, e := range r.Events {
		names[i] = e.String()
	}
	legacy := map[string]any{
		"name":                   r.Name,
		"seed":                   r.Seed,
		"defense":                r.Level.String(),
		"padded":                 r.Padded,
		"events":                 names,
		"quantum":                r.Quantum,
		"train_zoo":              r.TrainSpecs,
		"holdout_zoo":            r.HoldoutSpecs,
		"kinds":                  r.Kinds,
		"chance_kind":            r.ChanceKind,
		"victims":                r.Victims,
		"exact_count_rate":       r.ExactCountRate,
		"mean_kind_accuracy":     r.MeanKindAccuracy,
		"mean_param_rel_err":     r.MeanParamRelErr,
		"mean_footprint_rel_err": r.MeanFootprintRelErr,
	}
	want, err := json.MarshalIndent(legacy, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(jsonResult(r), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resultJSON bytes drifted from the legacy map encoding.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
