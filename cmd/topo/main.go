// Command topo runs the topology-recovery stage: attacker models
// (segmenter, per-segment kind classifier, hyper-parameter estimators)
// are fitted on a training zoo of random architectures, then a disjoint
// held-out zoo of victims — architectures the attacker has never profiled
// — is reconstructed layer-by-layer from the flat side-channel trace and
// validated against measured pipeline profiles. This is the CSI-NN-style
// full reverse engineering the archid stage's zoo lookup stops short of.
//
// Usage:
//
//	topo -dataset mnist [-defense baseline] [-events instructions,L1-dcache-loads]
//	     [-train-zoo 8] [-holdout 6] [-runs 8] [-quantum 5000]
//	     [-workers N] [-seed 1] [-max-inputs 0] [-json out.json]
//
// All observations derive from -seed via per-shard seed derivation, so
// any -workers value reproduces byte-identical results. Under -defense
// padded-envelope every victim is padded to the holdout zoo's footprint
// envelope and the reconstruction collapses to chance.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro"
	"repro/internal/hpc"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/topo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topo: ")
	var (
		dsName    = flag.String("dataset", "mnist", "dataset: mnist or cifar")
		defName   = flag.String("defense", "baseline", "defense level: baseline, dense-execution, constant-time, noise-injection, padded-envelope")
		events    = flag.String("events", "instructions,L1-dcache-loads", "event set (base, fig2b, extended) or comma-separated event list")
		trainZoo  = flag.Int("train-zoo", 8, "training-zoo size (architectures the attacker profiles)")
		holdout   = flag.Int("holdout", 6, "held-out victim count (never-profiled architectures)")
		runs      = flag.Int("runs", 8, "measured pipeline observations per victim")
		quantum   = flag.Uint64("quantum", 0, "trace-sampling quantum in instructions; 0 = default")
		workers   = flag.Int("workers", 0, "pipeline workers; 0 = GOMAXPROCS")
		seed      = flag.Int64("seed", 0, "campaign root seed; 0 = scenario seed")
		maxInputs = flag.Int("max-inputs", 0, "cap on the shared input pool; 0 = all test images")
		jsonPath  = flag.String("json", "", "write the result as JSON to this file")
		tracePath = flag.String("trace", "", "write a Chrome trace_event timeline of the campaign to this file")
		obsPath   = flag.String("obs", "", "stream telemetry events to this file as JSONL")
	)
	flag.Parse()

	level, err := repro.ParseDefense(*defName)
	if err != nil {
		log.Fatal(err)
	}
	evs, err := hpc.ParseEventSpec(*events)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	s, err := repro.NewScenario(repro.ScenarioConfig{Dataset: repro.Dataset(*dsName)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstructing %d held-out architectures (training zoo %d) on %s inputs at defense %s...\n\n",
		*holdout, *trainZoo, *dsName, level)

	rec, obsFinish, err := obs.FileRecorder(*tracePath, *obsPath, "topo")
	if err != nil {
		log.Fatal(err)
	}

	res, err := s.TopoGrouped(ctx, level, repro.TopoConfig{
		Events:    evs,
		TrainZoo:  *trainZoo,
		Holdout:   *holdout,
		Runs:      *runs,
		Quantum:   *quantum,
		Workers:   *workers,
		Seed:      *seed,
		MaxInputs: *maxInputs,
		Obs:       rec,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := obsFinish(); err != nil {
		log.Fatal(err)
	}

	if err := report.TopoSummary(os.Stdout, res); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	switch {
	case res.ExactCountRate >= 0.9 && res.MeanKindAccuracy >= 0.9:
		fmt.Printf("verdict: architecture reconstructable — %.0f%% exact layer counts, %.0f%% layer kinds on never-profiled victims\n",
			100*res.ExactCountRate, 100*res.MeanKindAccuracy)
	case res.MeanKindAccuracy > 1.5*res.ChanceKind:
		fmt.Printf("verdict: architecture partially reconstructable — %.0f%% layer kinds vs %.0f%% chance\n",
			100*res.MeanKindAccuracy, 100*res.ChanceKind)
	default:
		fmt.Printf("verdict: architecture hidden — layer-kind recovery %.0f%% is within 1.5x of chance (%.0f%%)\n",
			100*res.MeanKindAccuracy, 100*res.ChanceKind)
	}
	fmt.Printf("(root seed %d reproduces this result at any -workers value)\n", res.Seed)

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonResult(res)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("result written to %s\n", *jsonPath)
	}
}

// resultJSON is the wire shape of a TopoResult. Fields are declared in
// the alphabetical key order encoding/json gives sorted map keys, so
// the emitted bytes match the map[string]any encoding this replaced.
type resultJSON struct {
	ChanceKind          float64             `json:"chance_kind"`
	Defense             string              `json:"defense"`
	Events              []string            `json:"events"`
	ExactCountRate      float64             `json:"exact_count_rate"`
	HoldoutZoo          []nn.SpecInfo       `json:"holdout_zoo"`
	Kinds               []string            `json:"kinds"`
	MeanFootprintRelErr float64             `json:"mean_footprint_rel_err"`
	MeanKindAccuracy    float64             `json:"mean_kind_accuracy"`
	MeanParamRelErr     float64             `json:"mean_param_rel_err"`
	Name                string              `json:"name"`
	Padded              bool                `json:"padded"`
	Quantum             uint64              `json:"quantum"`
	Seed                int64               `json:"seed"`
	TrainZoo            []nn.SpecInfo       `json:"train_zoo"`
	Victims             []topo.VictimResult `json:"victims"`
}

// jsonResult flattens a TopoResult into a JSON-friendly shape with event
// names instead of internal event ids.
func jsonResult(r *repro.TopoResult) resultJSON {
	names := make([]string, len(r.Events))
	for i, e := range r.Events {
		names[i] = e.String()
	}
	return resultJSON{
		ChanceKind:          r.ChanceKind,
		Defense:             r.Level.String(),
		Events:              names,
		ExactCountRate:      r.ExactCountRate,
		HoldoutZoo:          r.HoldoutSpecs,
		Kinds:               r.Kinds,
		MeanFootprintRelErr: r.MeanFootprintRelErr,
		MeanKindAccuracy:    r.MeanKindAccuracy,
		MeanParamRelErr:     r.MeanParamRelErr,
		Name:                r.Name,
		Padded:              r.Padded,
		Quantum:             r.Quantum,
		Seed:                r.Seed,
		TrainZoo:            r.TrainSpecs,
		Victims:             r.Victims,
	}
}
