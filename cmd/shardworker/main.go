// Command shardworker is the worker process of the distributed audit
// fabric. A coordinator (any repro campaign with Processes ≥ 1) launches
// it, sends the campaign spec in an init frame and then streams shard
// plans; the worker rebuilds the full campaign state from the spec —
// every construction step is seeded, so the rebuild is bit-identical to
// the coordinator's — and answers each plan with the shard's canonical
// profile payload and digest.
//
// Usage:
//
//	shardworker                      # frames on stdin/stdout (default)
//	shardworker -connect 127.0.0.1:N # frames on a TCP connection
//
// The process is never run by hand: it speaks length-prefixed JSON
// frames (internal/fabric) on its transport and nothing else. In stdio
// mode os.Stdout is rebound to stderr before serving so stray prints
// from any library can never corrupt the framing.
//
// Fault-injection hooks, honoured only to make the failure-path test
// suite deterministic:
//
//	REPRO_FABRIC_TEST_KILL_BEFORE_SHARD=<sentinel path>
//	    SIGKILL the process right before executing a shard — but only
//	    for the one process that wins creating the sentinel file, so a
//	    campaign loses exactly one worker mid-shard.
//	REPRO_FABRIC_TEST_FAIL_AFTER_RESULTS=<n>
//	    Exit 1 with a message on stderr after n result frames.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strconv"

	"repro"
	"repro/internal/fabric"
	"repro/internal/pipeline"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shardworker: ")
	connect := flag.String("connect", "", "coordinator TCP address; default is stdin/stdout frames")
	flag.Parse()

	var in io.Reader
	var out io.Writer
	if *connect != "" {
		conn, err := net.Dial("tcp", *connect)
		if err != nil {
			log.Fatalf("connecting to coordinator: %v", err)
		}
		defer conn.Close()
		in, out = conn, conn
	} else {
		in, out = os.Stdin, os.Stdout
		// Anything that prints to os.Stdout after this point lands on
		// stderr instead of corrupting the frame stream.
		os.Stdout = os.Stderr
	}

	if err := fabric.Serve(context.Background(), in, out, repro.NewWorkerRunner, faultHooks()); err != nil {
		log.Fatal(err)
	}
}

// faultHooks builds the test-only serve hooks from the environment;
// production runs get nil hooks.
func faultHooks() *fabric.ServeOptions {
	opts := &fabric.ServeOptions{}
	used := false
	if sentinel := os.Getenv("REPRO_FABRIC_TEST_KILL_BEFORE_SHARD"); sentinel != "" {
		used = true
		opts.BeforeExecute = func(plan pipeline.Plan) error {
			// O_EXCL makes the sentinel a one-shot claim across the whole
			// worker pool: exactly one process dies, exactly once.
			f, err := os.OpenFile(sentinel, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
			if err != nil {
				return nil // another worker already took the kill
			}
			fmt.Fprintf(f, "killed before shard %d\n", plan.Index)
			f.Close()
			//detlint:allow seedpurity — fault-injection self-SIGKILL: the pid addresses this process for Kill, no campaign bytes derive from it
			proc, _ := os.FindProcess(os.Getpid())
			proc.Kill() // SIGKILL: no deferred cleanup, no error frame
			select {}   // unreachable; Kill is asynchronous on some platforms
		}
	}
	if after := os.Getenv("REPRO_FABRIC_TEST_FAIL_AFTER_RESULTS"); after != "" {
		used = true
		n, err := strconv.Atoi(after)
		if err != nil {
			log.Fatalf("REPRO_FABRIC_TEST_FAIL_AFTER_RESULTS: %v", err)
		}
		opts.AfterResult = func(sent int) error {
			if sent >= n {
				return fmt.Errorf("injected failure after %d results", sent)
			}
			return nil
		}
	}
	if !used {
		return nil
	}
	return opts
}
