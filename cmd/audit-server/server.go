package main

// The audit server's queue and HTTP surface, separated from main so the
// handlers and lifecycle are unit-testable with an injected run
// function instead of multi-minute real campaigns.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro"
)

// CampaignRequest is the POST /campaigns body: one audit campaign,
// declared with the same spec vocabulary the fabric's worker protocol
// uses. Budgets left zero take the stage's documented defaults.
type CampaignRequest struct {
	// Stage selects the audit: report, attack, archid, topo or monitor.
	Stage string `json:"stage"`
	// Scenario is the case study to rebuild (repro.ScenarioSpec).
	Scenario repro.ScenarioSpec `json:"scenario"`
	// Events are the monitored counters; empty uses the stage default.
	Events []string `json:"events,omitempty"`
	// Classes are the report/attack input categories.
	Classes []int `json:"classes,omitempty"`
	// Runs is the main per-class/per-victim run budget of the stage.
	Runs int `json:"runs,omitempty"`
	// AttackRuns is the held-out scoring budget (attack/archid).
	AttackRuns int `json:"attack_runs,omitempty"`
	// MaxInputs caps the stage's input pool.
	MaxInputs int `json:"max_inputs,omitempty"`
	// Seed overrides the campaign root seed; 0 uses the scenario seed.
	Seed int64 `json:"seed,omitempty"`
	// Alpha is the monitor stage's overall significance level; 0 uses
	// the default 0.05.
	Alpha float64 `json:"alpha,omitempty"`
	// Tenants ≥ 2 runs the monitor stage in co-residency mode.
	Tenants int `json:"tenants,omitempty"`
	// NoStop disables the monitor stage's early stopping.
	NoStop bool `json:"no_stop,omitempty"`
	// Processes distributes collection over shardworker processes; 0
	// runs in-process. Reports are byte-identical either way.
	Processes int `json:"processes,omitempty"`
}

// campaignState is a queued campaign's lifecycle phase.
type campaignState string

const (
	stateQueued  campaignState = "queued"
	stateRunning campaignState = "running"
	stateDone    campaignState = "done"
	stateFailed  campaignState = "failed"
)

// campaign is one queued audit and its outcome.
type campaign struct {
	ID        int             `json:"id"`
	State     campaignState   `json:"state"`
	Request   CampaignRequest `json:"request"`
	Error     string          `json:"error,omitempty"`
	Report    json.RawMessage `json:"report,omitempty"`
	Submitted time.Time       `json:"submitted"`
}

// runFunc executes one campaign and returns its JSON report. main
// installs runCampaign; tests install fakes.
type runFunc func(ctx context.Context, req CampaignRequest) (json.RawMessage, error)

// server queues campaigns and serves their reports. Campaigns run one
// at a time in submission order — the fabric already parallelizes
// inside a campaign, so the queue stays strictly FIFO and every report
// is reproducible independent of what else was submitted.
type server struct {
	run runFunc

	mu        sync.Mutex
	campaigns map[int]*campaign
	order     []int
	nextID    int

	queue chan int
	done  chan struct{}
}

func newServer(run runFunc) *server {
	s := &server{
		run:       run,
		campaigns: map[int]*campaign{},
		nextID:    1,
		queue:     make(chan int, 1024),
		done:      make(chan struct{}),
	}
	go s.worker()
	return s
}

// worker drains the queue sequentially until Close.
func (s *server) worker() {
	for id := range s.queue {
		s.mu.Lock()
		c := s.campaigns[id]
		c.State = stateRunning
		req := c.Request
		s.mu.Unlock()

		report, err := s.run(context.Background(), req)

		s.mu.Lock()
		if err != nil {
			c.State = stateFailed
			c.Error = err.Error()
		} else {
			c.State = stateDone
			c.Report = report
		}
		s.mu.Unlock()
	}
	close(s.done)
}

// Close stops accepting work and waits for the in-flight campaign.
func (s *server) Close() {
	close(s.queue)
	<-s.done
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/campaigns", s.handleCampaigns)
	mux.HandleFunc("/campaigns/", s.handleCampaign)
	return mux
}

// handleCampaigns serves POST /campaigns (enqueue) and GET /campaigns
// (list all, newest last).
func (s *server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req CampaignRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "decoding campaign request: %v", err)
			return
		}
		if err := validateRequest(req); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.mu.Lock()
		id := s.nextID
		s.nextID++
		//detlint:allow seedpurity — Submitted is display-only operator telemetry; no campaign bytes derive from it
		c := &campaign{ID: id, State: stateQueued, Request: req, Submitted: time.Now().UTC()}
		s.campaigns[id] = c
		s.order = append(s.order, id)
		s.mu.Unlock()
		s.queue <- id
		writeJSON(w, http.StatusAccepted, enqueuedJSON{ID: id, State: stateQueued})
	case http.MethodGet:
		s.mu.Lock()
		list := make([]*campaign, 0, len(s.order))
		for _, id := range s.order {
			list = append(list, snapshot(s.campaigns[id]))
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, list)
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

// handleCampaign serves GET /campaigns/<id>: state plus, once done, the
// full JSON report.
func (s *server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	id, err := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/campaigns/"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "campaign ids are integers")
		return
	}
	s.mu.Lock()
	c, ok := s.campaigns[id]
	if ok {
		c = snapshot(c)
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no campaign %d", id)
		return
	}
	writeJSON(w, http.StatusOK, c)
}

// snapshot copies a campaign under the caller's lock so handlers never
// serialize a struct the worker goroutine is mutating.
func snapshot(c *campaign) *campaign {
	cp := *c
	return &cp
}

func validateRequest(req CampaignRequest) error {
	switch req.Stage {
	case repro.StageReport, repro.StageAttack, repro.StageArchID, repro.StageTopo, repro.StageMonitor:
	default:
		return fmt.Errorf("unknown stage %q (want report, attack, archid, topo or monitor)", req.Stage)
	}
	if req.Scenario.Dataset == "" {
		return fmt.Errorf("campaign needs a scenario dataset")
	}
	return nil
}

// enqueuedJSON acknowledges POST /campaigns. A named struct (not a bare
// map) keeps the response schema explicit and its key order a property
// of the type; fields stay in the alphabetical order the former map
// encoding produced, so client-visible bytes are unchanged.
type enqueuedJSON struct {
	ID    int           `json:"id"`
	State campaignState `json:"state"`
}

// errorJSON is the uniform error envelope for every non-2xx response.
type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorJSON{Error: fmt.Sprintf(format, args...)})
}
