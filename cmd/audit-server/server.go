package main

// The audit server's queue and HTTP surface, separated from main so the
// handlers and lifecycle are unit-testable with an injected run
// function instead of multi-minute real campaigns.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/obs"
)

// CampaignRequest is the POST /campaigns body: one audit campaign,
// declared with the same spec vocabulary the fabric's worker protocol
// uses. Budgets left zero take the stage's documented defaults.
type CampaignRequest struct {
	// Stage selects the audit: report, attack, archid, topo or monitor.
	Stage string `json:"stage"`
	// Scenario is the case study to rebuild (repro.ScenarioSpec).
	Scenario repro.ScenarioSpec `json:"scenario"`
	// Events are the monitored counters; empty uses the stage default.
	Events []string `json:"events,omitempty"`
	// Classes are the report/attack input categories.
	Classes []int `json:"classes,omitempty"`
	// Runs is the main per-class/per-victim run budget of the stage.
	Runs int `json:"runs,omitempty"`
	// AttackRuns is the held-out scoring budget (attack/archid).
	AttackRuns int `json:"attack_runs,omitempty"`
	// MaxInputs caps the stage's input pool.
	MaxInputs int `json:"max_inputs,omitempty"`
	// Seed overrides the campaign root seed; 0 uses the scenario seed.
	Seed int64 `json:"seed,omitempty"`
	// Alpha is the monitor stage's overall significance level; 0 uses
	// the default 0.05.
	Alpha float64 `json:"alpha,omitempty"`
	// Tenants ≥ 2 runs the monitor stage in co-residency mode.
	Tenants int `json:"tenants,omitempty"`
	// NoStop disables the monitor stage's early stopping.
	NoStop bool `json:"no_stop,omitempty"`
	// Processes distributes collection over shardworker processes; 0
	// runs in-process. Reports are byte-identical either way.
	Processes int `json:"processes,omitempty"`
}

// campaignState is a queued campaign's lifecycle phase.
type campaignState string

const (
	stateQueued  campaignState = "queued"
	stateRunning campaignState = "running"
	stateDone    campaignState = "done"
	stateFailed  campaignState = "failed"
)

// campaign is one queued audit and its outcome.
type campaign struct {
	ID        int             `json:"id"`
	State     campaignState   `json:"state"`
	Request   CampaignRequest `json:"request"`
	Error     string          `json:"error,omitempty"`
	Report    json.RawMessage `json:"report,omitempty"`
	Submitted time.Time       `json:"submitted"`

	// rec is the campaign's telemetry recorder, armed when the campaign
	// starts running. Observational output only: the report bytes never
	// depend on it. Unexported, so campaign JSON is unchanged.
	rec *obs.Recorder
}

// runFunc executes one campaign and returns its JSON report, recording
// progress telemetry into rec. main installs runCampaign; tests install
// fakes.
type runFunc func(ctx context.Context, req CampaignRequest, rec *obs.Recorder) (json.RawMessage, error)

// server queues campaigns and serves their reports. Campaigns run one
// at a time in submission order — the fabric already parallelizes
// inside a campaign, so the queue stays strictly FIFO and every report
// is reproducible independent of what else was submitted.
type server struct {
	run runFunc
	// clock is the server's only wall-clock source (display-only fields
	// like Submitted and /metrics uptime; no campaign bytes derive from
	// it). Tests inject fakes.
	clock obs.Clock
	// metrics aggregates finished campaigns' counters for GET /metrics;
	// its elapsed gauge is the server uptime.
	metrics *obs.Recorder

	mu        sync.Mutex
	campaigns map[int]*campaign
	order     []int
	nextID    int

	queue chan int
	done  chan struct{}
}

func newServer(run runFunc) *server {
	return newServerWithClock(run, obs.SystemClock())
}

func newServerWithClock(run runFunc, clock obs.Clock) *server {
	s := &server{
		run:       run,
		clock:     clock,
		metrics:   obs.New(obs.Config{Clock: clock, Label: "audit-server"}),
		campaigns: map[int]*campaign{},
		nextID:    1,
		queue:     make(chan int, 1024),
		done:      make(chan struct{}),
	}
	go s.worker()
	return s
}

// worker drains the queue sequentially until Close.
func (s *server) worker() {
	for id := range s.queue {
		s.mu.Lock()
		c := s.campaigns[id]
		c.State = stateRunning
		c.rec = obs.New(obs.Config{Clock: s.clock, Label: fmt.Sprintf("campaign-%d", id)})
		req, rec := c.Request, c.rec
		s.mu.Unlock()

		report, err := s.run(context.Background(), req, rec)

		s.mu.Lock()
		if err != nil {
			c.State = stateFailed
			c.Error = err.Error()
		} else {
			c.State = stateDone
			c.Report = report
		}
		// Fold the finished campaign's counters into the server-wide
		// /metrics totals (running campaigns are visible per-campaign via
		// their /progress endpoint until they land here).
		for _, ctr := range obs.AllCounters() {
			s.metrics.Add(ctr, rec.Get(ctr))
		}
		s.mu.Unlock()
	}
	close(s.done)
}

// Close stops accepting work and waits for the in-flight campaign.
func (s *server) Close() {
	close(s.queue)
	<-s.done
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/campaigns", s.handleCampaigns)
	mux.HandleFunc("/campaigns/", s.handleCampaign)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// handleCampaigns serves POST /campaigns (enqueue) and GET /campaigns
// (list all, newest last).
func (s *server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req CampaignRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "decoding campaign request: %v", err)
			return
		}
		if err := validateRequest(req); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.mu.Lock()
		id := s.nextID
		s.nextID++
		// Submitted is display-only operator telemetry read off the obs
		// clock — the repo's one sanctioned wall-clock source; no campaign
		// bytes derive from it.
		c := &campaign{ID: id, State: stateQueued, Request: req, Submitted: s.clock.Now().UTC()}
		s.campaigns[id] = c
		s.order = append(s.order, id)
		s.mu.Unlock()
		s.queue <- id
		writeJSON(w, http.StatusAccepted, enqueuedJSON{ID: id, State: stateQueued})
	case http.MethodGet:
		s.mu.Lock()
		list := make([]*campaign, 0, len(s.order))
		for _, id := range s.order {
			list = append(list, snapshot(s.campaigns[id]))
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, list)
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

// handleCampaign serves GET /campaigns/<id> (state plus, once done, the
// full JSON report) and GET /campaigns/<id>/progress (live telemetry).
func (s *server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/campaigns/")
	sub := ""
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest, sub = rest[:i], rest[i+1:]
	}
	id, err := strconv.Atoi(rest)
	if err != nil {
		httpError(w, http.StatusBadRequest, "campaign ids are integers")
		return
	}
	s.mu.Lock()
	c, ok := s.campaigns[id]
	if ok {
		c = snapshot(c)
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no campaign %d", id)
		return
	}
	switch sub {
	case "":
		writeJSON(w, http.StatusOK, c)
	case "progress":
		// Every read below is nil-safe: a queued campaign has no recorder
		// yet and reports zeros.
		writeJSON(w, http.StatusOK, progressJSON{
			ID:          c.ID,
			State:       c.State,
			Phase:       c.rec.Phase(),
			ShardsDone:  c.rec.Get(obs.CShardsDone),
			ShardsTotal: c.rec.Get(obs.CShardsPlanned),
			ElapsedMS:   c.rec.ElapsedMS(),
		})
	default:
		httpError(w, http.StatusNotFound, "no campaign resource %q", sub)
	}
}

// handleMetrics serves GET /metrics: the server-wide counter totals over
// finished campaigns in obs's fixed-order text format, with the elapsed
// gauge reporting server uptime.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics.WriteMetrics(w)
}

// progressJSON is the GET /campaigns/<id>/progress body: the campaign's
// live stage, shard progress and elapsed wall time.
type progressJSON struct {
	ID          int           `json:"id"`
	State       campaignState `json:"state"`
	Phase       string        `json:"phase,omitempty"`
	ShardsDone  int64         `json:"shards_done"`
	ShardsTotal int64         `json:"shards_total"`
	ElapsedMS   int64         `json:"elapsed_ms"`
}

// snapshot copies a campaign under the caller's lock so handlers never
// serialize a struct the worker goroutine is mutating.
func snapshot(c *campaign) *campaign {
	cp := *c
	return &cp
}

func validateRequest(req CampaignRequest) error {
	switch req.Stage {
	case repro.StageReport, repro.StageAttack, repro.StageArchID, repro.StageTopo, repro.StageMonitor:
	default:
		return fmt.Errorf("unknown stage %q (want report, attack, archid, topo or monitor)", req.Stage)
	}
	if req.Scenario.Dataset == "" {
		return fmt.Errorf("campaign needs a scenario dataset")
	}
	return nil
}

// enqueuedJSON acknowledges POST /campaigns. A named struct (not a bare
// map) keeps the response schema explicit and its key order a property
// of the type; fields stay in the alphabetical order the former map
// encoding produced, so client-visible bytes are unchanged.
type enqueuedJSON struct {
	ID    int           `json:"id"`
	State campaignState `json:"state"`
}

// errorJSON is the uniform error envelope for every non-2xx response.
type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorJSON{Error: fmt.Sprintf(format, args...)})
}
