// Command audit-server is the distributed audit fabric's HTTP
// front-end: clients POST campaign requests, the server queues and runs
// them one at a time (each campaign may itself fan out over shardworker
// processes), and the finished JSON reports are served back by id.
//
// Usage:
//
//	audit-server [-addr :8347] [-processes 4] [-worker-bin PATH]
//	             [-journal BASE] [-fabric-tcp]
//
// API:
//
//	POST /campaigns             {"stage":"report","scenario":{"dataset":"mnist",...},...}
//	                            → 202 {"id":1,"state":"queued"}
//	GET  /campaigns             → every campaign, submission order
//	GET  /campaigns/1           → state + report once done
//	GET  /campaigns/1/progress  → live telemetry: stage, shards done/total, elapsed
//	GET  /metrics               → server-wide counter totals, text format
//
// Every report is byte-reproducible: a campaign's bytes depend only on
// its request, never on the queue around it or the process count.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro"
	"repro/internal/hpc"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("audit-server: ")
	var (
		addr      = flag.String("addr", ":8347", "HTTP listen address")
		processes = flag.Int("processes", 0, "shardworker processes per campaign; 0 = in-process collection")
		workerBin = flag.String("worker-bin", "", "shardworker binary (default $REPRO_SHARDWORKER)")
		journal   = flag.String("journal", "", "base path for shard-completion journals; empty disables resume")
		fabricTCP = flag.Bool("fabric-tcp", false, "dispatch shards over loopback TCP instead of pipes")
	)
	flag.Parse()

	fc := repro.FabricConfig{WorkerBin: *workerBin, Journal: *journal, TCP: *fabricTCP}
	s := newServer(func(ctx context.Context, req CampaignRequest, rec *obs.Recorder) (json.RawMessage, error) {
		return runCampaign(ctx, req, *processes, fc, rec)
	})
	defer s.Close()

	log.Printf("listening on %s (processes=%d)", *addr, *processes)
	log.Fatal(http.ListenAndServe(*addr, s.handler()))
}

// runCampaign executes one queued request with the real repro stages,
// recording progress telemetry into rec (served live on the campaign's
// /progress endpoint; report bytes never depend on it).
func runCampaign(ctx context.Context, req CampaignRequest, processes int, fc repro.FabricConfig, rec *obs.Recorder) (json.RawMessage, error) {
	level, err := repro.ParseDefense(req.Scenario.Defense)
	if err != nil {
		return nil, err
	}
	s, err := repro.NewScenario(repro.ScenarioConfig{
		Dataset:        req.Scenario.Dataset,
		Seed:           req.Scenario.Seed,
		PerClassTrain:  req.Scenario.PerClassTrain,
		PerClassTest:   req.Scenario.PerClassTest,
		Epochs:         req.Scenario.Epochs,
		LR:             req.Scenario.LR,
		Defense:        level,
		DisableRuntime: req.Scenario.DisableRuntime,
		DisableNoise:   req.Scenario.DisableNoise,
	})
	if err != nil {
		return nil, err
	}
	var events []repro.Event
	if len(req.Events) > 0 {
		for _, name := range req.Events {
			evs, err := hpc.ParseEventSpec(name)
			if err != nil {
				return nil, err
			}
			events = append(events, evs...)
		}
	}

	var result any
	switch req.Stage {
	case repro.StageReport:
		result, err = s.EvaluateCtx(ctx, repro.EvalConfig{
			Classes:      req.Classes,
			Events:       events,
			RunsPerClass: req.Runs,
			Workers:      1,
			Seed:         req.Seed,
			Processes:    processes,
			Fabric:       fc,
			Obs:          rec,
		})
	case repro.StageAttack:
		result, err = s.Attack(ctx, repro.AttackConfig{
			Classes:     req.Classes,
			Events:      events,
			ProfileRuns: req.Runs,
			AttackRuns:  req.AttackRuns,
			Workers:     1,
			Seed:        req.Seed,
			Processes:   processes,
			Fabric:      fc,
			Obs:         rec,
		})
	case repro.StageArchID:
		result, err = s.ArchID(ctx, repro.ArchIDConfig{
			Events:      events,
			ProfileRuns: req.Runs,
			AttackRuns:  req.AttackRuns,
			MaxInputs:   req.MaxInputs,
			Workers:     1,
			Seed:        req.Seed,
			Processes:   processes,
			Fabric:      fc,
			Obs:         rec,
		})
	case repro.StageMonitor:
		// The monitor report leads with the first-detection trace count:
		// how many monitored inferences the verdict cost this deployment.
		result, err = s.MonitorCtx(ctx, repro.MonitorConfig{
			Classes:   req.Classes,
			Events:    events,
			Budget:    req.Runs,
			Alpha:     req.Alpha,
			Workers:   1,
			Seed:      req.Seed,
			Tenants:   req.Tenants,
			NoStop:    req.NoStop,
			Processes: processes,
			Fabric:    fc,
			Obs:       rec,
		})
	case repro.StageTopo:
		result, err = s.Topo(ctx, repro.TopoConfig{
			Events:    events,
			Runs:      req.Runs,
			MaxInputs: req.MaxInputs,
			Workers:   1,
			Seed:      req.Seed,
			Processes: processes,
			Fabric:    fc,
			Obs:       rec,
		})
	default:
		return nil, fmt.Errorf("unknown stage %q", req.Stage)
	}
	if err != nil {
		return nil, err
	}
	return json.Marshal(result)
}
