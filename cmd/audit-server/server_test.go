package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/obs"
)

// newTestServer builds a server around run and an httptest front-end.
func newTestServer(t *testing.T, run runFunc) (*server, *httptest.Server) {
	t.Helper()
	s := newServer(run)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postCampaign(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /campaigns: %v", err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
}

// waitState polls GET /campaigns/<id> until the campaign reaches want.
func waitState(t *testing.T, ts *httptest.Server, id int, want campaignState) campaign {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/campaigns/%d", ts.URL, id))
		if err != nil {
			t.Fatalf("GET campaign %d: %v", id, err)
		}
		var c campaign
		decodeBody(t, resp, &c)
		if c.State == want {
			return c
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %d stuck in %q, want %q", id, c.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

const validBody = `{"stage":"report","scenario":{"dataset":"mnist","defense":"baseline"}}`

func TestServerQueuesAndServesReport(t *testing.T) {
	_, ts := newTestServer(t, func(ctx context.Context, req CampaignRequest, rec *obs.Recorder) (json.RawMessage, error) {
		return json.RawMessage(fmt.Sprintf(`{"stage":%q,"ok":true}`, req.Stage)), nil
	})

	resp := postCampaign(t, ts, validBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status = %d, want %d", resp.StatusCode, http.StatusAccepted)
	}
	var ack struct {
		ID    int           `json:"id"`
		State campaignState `json:"state"`
	}
	decodeBody(t, resp, &ack)
	if ack.ID != 1 || ack.State != stateQueued {
		t.Fatalf("ack = %+v, want id 1 queued", ack)
	}

	c := waitState(t, ts, ack.ID, stateDone)
	var compact bytes.Buffer
	if err := json.Compact(&compact, c.Report); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if compact.String() != `{"stage":"report","ok":true}` {
		t.Fatalf("report = %s", c.Report)
	}
	if c.Error != "" {
		t.Fatalf("unexpected error %q", c.Error)
	}
}

func TestServerRunsCampaignsSequentiallyInOrder(t *testing.T) {
	var mu sync.Mutex
	var ran []string
	running := 0
	_, ts := newTestServer(t, func(ctx context.Context, req CampaignRequest, rec *obs.Recorder) (json.RawMessage, error) {
		mu.Lock()
		running++
		if running > 1 {
			mu.Unlock()
			return nil, fmt.Errorf("overlapping campaigns")
		}
		mu.Unlock()
		time.Sleep(10 * time.Millisecond)
		mu.Lock()
		running--
		ran = append(ran, req.Stage)
		mu.Unlock()
		return json.RawMessage(`{}`), nil
	})

	stages := []string{repro.StageReport, repro.StageAttack, repro.StageArchID, repro.StageTopo}
	var lastID int
	for _, st := range stages {
		resp := postCampaign(t, ts, fmt.Sprintf(`{"stage":%q,"scenario":{"dataset":"mnist","defense":"baseline"}}`, st))
		var ack struct {
			ID int `json:"id"`
		}
		decodeBody(t, resp, &ack)
		lastID = ack.ID
	}
	waitState(t, ts, lastID, stateDone)

	mu.Lock()
	defer mu.Unlock()
	if fmt.Sprint(ran) != fmt.Sprint(stages) {
		t.Fatalf("ran %v, want FIFO %v", ran, stages)
	}
}

func TestServerReportsCampaignFailure(t *testing.T) {
	_, ts := newTestServer(t, func(ctx context.Context, req CampaignRequest, rec *obs.Recorder) (json.RawMessage, error) {
		return nil, fmt.Errorf("synthetic campaign failure")
	})
	resp := postCampaign(t, ts, validBody)
	var ack struct {
		ID int `json:"id"`
	}
	decodeBody(t, resp, &ack)

	c := waitState(t, ts, ack.ID, stateFailed)
	if !strings.Contains(c.Error, "synthetic campaign failure") {
		t.Fatalf("error = %q", c.Error)
	}
	if len(c.Report) != 0 {
		t.Fatalf("failed campaign has a report: %s", c.Report)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, func(ctx context.Context, req CampaignRequest, rec *obs.Recorder) (json.RawMessage, error) {
		t.Error("run called for a rejected request")
		return nil, nil
	})
	cases := []struct {
		name, body string
	}{
		{"bad json", `{"stage":`},
		{"unknown field", `{"stage":"report","bogus":1}`},
		{"unknown stage", `{"stage":"exfiltrate","scenario":{"dataset":"mnist"}}`},
		{"missing dataset", `{"stage":"report","scenario":{}}`},
	}
	for _, tc := range cases {
		resp := postCampaign(t, ts, tc.body)
		var e struct {
			Error string `json:"error"`
		}
		decodeBody(t, resp, &e)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		if e.Error == "" {
			t.Errorf("%s: no error message", tc.name)
		}
	}
}

func TestServerListsCampaignsAndHandles404(t *testing.T) {
	_, ts := newTestServer(t, func(ctx context.Context, req CampaignRequest, rec *obs.Recorder) (json.RawMessage, error) {
		return json.RawMessage(`{}`), nil
	})
	var lastID int
	for i := 0; i < 3; i++ {
		resp := postCampaign(t, ts, validBody)
		var ack struct {
			ID int `json:"id"`
		}
		decodeBody(t, resp, &ack)
		lastID = ack.ID
	}
	waitState(t, ts, lastID, stateDone)

	resp, err := http.Get(ts.URL + "/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var list []campaign
	decodeBody(t, resp, &list)
	if len(list) != 3 {
		t.Fatalf("listed %d campaigns, want 3", len(list))
	}
	for i, c := range list {
		if c.ID != i+1 {
			t.Fatalf("list order %v, want submission order", list)
		}
	}

	resp, err = http.Get(ts.URL + "/campaigns/99")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing campaign status = %d, want 404", resp.StatusCode)
	}
}

func TestResponseBytesMatchLegacyMapEncoding(t *testing.T) {
	// The enqueue ack and error envelope moved from bare map literals
	// (flagged by detlint's wiredigest analyzer) to the named enqueuedJSON
	// / errorJSON structs; their field order mirrors the sorted map keys,
	// so client-visible bytes must be unchanged.
	marshal := func(v any) string {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	got := marshal(enqueuedJSON{ID: 3, State: stateQueued})
	want := marshal(map[string]any{"id": 3, "state": stateQueued})
	if got != want {
		t.Errorf("enqueue ack drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	got = marshal(errorJSON{Error: "no campaign 9"})
	want = marshal(map[string]string{"error": "no campaign 9"})
	if got != want {
		t.Errorf("error envelope drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestServerProgressAndMetrics: the /progress endpoint serves a running
// campaign's live stage and shard counts straight off its recorder, and
// /metrics folds finished campaigns into the server-wide totals.
func TestServerProgressAndMetrics(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	_, ts := newTestServer(t, func(ctx context.Context, req CampaignRequest, rec *obs.Recorder) (json.RawMessage, error) {
		rec.SetPhase("collect")
		rec.Add(obs.CShardsPlanned, 8)
		rec.Add(obs.CShardsDone, 3)
		close(started)
		<-release
		rec.Add(obs.CShardsDone, 5)
		return json.RawMessage(`{}`), nil
	})

	resp := postCampaign(t, ts, validBody)
	var ack enqueuedJSON
	decodeBody(t, resp, &ack)
	<-started

	getProgress := func() progressJSON {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("%s/campaigns/%d/progress", ts.URL, ack.ID))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("progress status = %d, want 200", resp.StatusCode)
		}
		var p progressJSON
		decodeBody(t, resp, &p)
		return p
	}

	p := getProgress()
	if p.State != stateRunning || p.Phase != "collect" || p.ShardsDone != 3 || p.ShardsTotal != 8 {
		t.Fatalf("mid-campaign progress = %+v, want running/collect 3 of 8", p)
	}

	close(release)
	waitState(t, ts, ack.ID, stateDone)
	p = getProgress()
	if p.State != stateDone || p.ShardsDone != 8 || p.ShardsTotal != 8 {
		t.Fatalf("finished progress = %+v, want done 8 of 8", p)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics Content-Type = %q, want text/plain", ct)
	}
	body := new(bytes.Buffer)
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	text := body.String()
	for _, want := range []string{"obs_shards_planned 8\n", "obs_shards_done 8\n", "obs_elapsed_ms "} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

// TestServerProgressErrors: unknown campaigns and unknown sub-resources
// under /campaigns/<id>/ both 404.
func TestServerProgressErrors(t *testing.T) {
	_, ts := newTestServer(t, func(ctx context.Context, req CampaignRequest, rec *obs.Recorder) (json.RawMessage, error) {
		return json.RawMessage(`{}`), nil
	})
	for _, path := range []string{"/campaigns/99/progress", "/campaigns/99", "/campaigns/1/bogus"} {
		resp := postCampaign(t, ts, validBody) // ensure campaign 1 exists for the bogus case
		resp.Body.Close()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s status = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestServerMonitorStage: the monitor stage is accepted, its knobs reach
// the runner, and the served report surfaces the first-detection trace
// count — the number a fleet operator reads off the endpoint.
func TestServerMonitorStage(t *testing.T) {
	var got CampaignRequest
	_, ts := newTestServer(t, func(ctx context.Context, req CampaignRequest, rec *obs.Recorder) (json.RawMessage, error) {
		got = req
		return json.RawMessage(`{"name":"mnist/baseline","stopped":true,"detection":{"event_name":"cache-misses","traces":58},"traces_seen":58}`), nil
	})

	body := `{"stage":"monitor","scenario":{"dataset":"mnist","defense":"baseline"},"runs":60,"alpha":0.01,"tenants":2,"no_stop":false}`
	resp := postCampaign(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status = %d, want %d", resp.StatusCode, http.StatusAccepted)
	}
	var ack enqueuedJSON
	decodeBody(t, resp, &ack)
	c := waitState(t, ts, ack.ID, stateDone)

	if got.Stage != repro.StageMonitor || got.Runs != 60 || got.Alpha != 0.01 || got.Tenants != 2 {
		t.Fatalf("runner saw %+v, monitor knobs lost in transit", got)
	}
	var rep struct {
		Stopped   bool `json:"stopped"`
		Detection struct {
			Traces int `json:"traces"`
		} `json:"detection"`
	}
	if err := json.Unmarshal(c.Report, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Stopped || rep.Detection.Traces != 58 {
		t.Fatalf("served report %s does not surface the detection trace count", c.Report)
	}
}
