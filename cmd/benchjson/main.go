// Command benchjson converts `go test -bench` output on stdin into the
// repository's benchmark-trajectory JSON (BENCH_PR<N>.json). Each bench
// line becomes one entry keyed by the benchmark name (GOMAXPROCS suffix
// stripped), recording ns/op, B/op, allocs/op and any custom metrics
// (accuracy, template_acc, ...). Repeated -count runs of the same bench
// are averaged.
//
// Usage:
//
//	go test -run '^$' -bench '...' -benchmem . | go run ./cmd/benchjson -pr 3 > BENCH_PR3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Entry is one benchmark's aggregated measurements.
type Entry struct {
	Runs       int                `json:"runs"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BPerOp     float64            `json:"b_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// File is the trajectory snapshot for one PR.
type File struct {
	PR        int               `json:"pr,omitempty"`
	GoVersion string            `json:"go_version"`
	GoOS      string            `json:"goos"`
	GoArch    string            `json:"goarch"`
	NumCPU    int               `json:"num_cpu"`
	Benches   map[string]*Entry `json:"benches"`
}

func main() {
	pr := flag.Int("pr", 0, "PR number recorded in the snapshot")
	flag.Parse()

	out := File{
		PR:        *pr,
		GoVersion: runtime.Version(),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Benches:   map[string]*Entry{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, e, ok := parseLine(line)
		if !ok {
			continue
		}
		agg, seen := out.Benches[name]
		if !seen {
			out.Benches[name] = e
			continue
		}
		// Average repeated runs (-count>1) weighted equally per run.
		n := float64(agg.Runs)
		agg.NsPerOp = (agg.NsPerOp*n + e.NsPerOp) / (n + 1)
		agg.BPerOp = (agg.BPerOp*n + e.BPerOp) / (n + 1)
		agg.AllocsOp = (agg.AllocsOp*n + e.AllocsOp) / (n + 1)
		for k, v := range e.Metrics {
			if agg.Metrics == nil {
				agg.Metrics = map[string]float64{}
			}
			agg.Metrics[k] = (agg.Metrics[k]*n + v) / (n + 1)
		}
		agg.Iterations += e.Iterations
		agg.Runs++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(out.Benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine parses one `BenchmarkName-8   N   12.3 ns/op   4 B/op ...` line.
func parseLine(line string) (string, *Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return "", nil, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix, keep sub-benchmark paths.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", nil, false
	}
	e := &Entry{Runs: 1, Iterations: iters}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			e.BPerOp = v
		case "allocs/op":
			e.AllocsOp = v
		case "MB/s":
			// not tracked
		default:
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[unit] = v
		}
	}
	return name, e, true
}
