package main

import "testing"

func TestParseLine(t *testing.T) {
	name, e, ok := parseLine("BenchmarkClassifyMNIST-8 \t 2204\t   1097791 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if name != "ClassifyMNIST" {
		t.Fatalf("name = %q", name)
	}
	if e.Iterations != 2204 || e.NsPerOp != 1097791 || e.BPerOp != 0 || e.AllocsOp != 0 {
		t.Fatalf("entry = %+v", e)
	}
}

func TestParseLineSubBenchAndMetrics(t *testing.T) {
	name, e, ok := parseLine("BenchmarkAttackStage/workers=1         \t       3\t 526251072 ns/op\t         0.3250 knn_acc\t         0.3250 template_acc\t18916125 B/op\t   11772 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if name != "AttackStage/workers=1" {
		t.Fatalf("name = %q", name)
	}
	if e.Metrics["knn_acc"] != 0.325 || e.Metrics["template_acc"] != 0.325 {
		t.Fatalf("metrics = %v", e.Metrics)
	}
	if e.BPerOp != 18916125 || e.AllocsOp != 11772 {
		t.Fatalf("entry = %+v", e)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	if _, _, ok := parseLine("ok  \trepro\t13.023s"); ok {
		t.Fatal("non-bench line accepted")
	}
	if _, _, ok := parseLine("BenchmarkBroken notanumber"); ok {
		t.Fatal("unparseable iteration count accepted")
	}
}
