// Command obsview inspects Chrome trace_event files produced by the
// repro observability layer (-trace flags, obs.Recorder.WriteTrace).
//
//	obsview -check trace.json     # validate the trace schema, exit non-zero on problems
//	obsview -summary trace.json   # per-category span counts and total duration
//
// Validated traces load in chrome://tracing or https://ui.perfetto.dev.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// rawTraceEvent mirrors the trace_event JSON schema for validation.
type rawTraceEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	TS   *int64 `json:"ts"`
	Dur  int64  `json:"dur"`
	PID  *int   `json:"pid"`
	TID  *int   `json:"tid"`
}

// rawTraceFile is the top-level trace_event object.
type rawTraceFile struct {
	TraceEvents []rawTraceEvent `json:"traceEvents"`
}

// Summary aggregates a validated trace.
type Summary struct {
	Events    int
	Spans     int
	Instants  int
	Metadata  int
	Processes int
	TotalDur  int64 // µs summed over spans
	ByCat     map[string]int
}

// Check validates a trace_event JSON stream: a traceEvents array whose
// entries carry a known phase, a name, pid/tid, sane timestamps, and
// non-negative durations. It returns an aggregate summary on success.
func Check(r io.Reader) (*Summary, error) {
	dec := json.NewDecoder(r)
	var tf rawTraceFile
	if err := dec.Decode(&tf); err != nil {
		return nil, fmt.Errorf("not valid trace JSON: %w", err)
	}
	if tf.TraceEvents == nil {
		return nil, fmt.Errorf("missing traceEvents array")
	}
	s := &Summary{ByCat: make(map[string]int)}
	pids := make(map[int]bool)
	for i, e := range tf.TraceEvents {
		if e.Name == "" {
			return nil, fmt.Errorf("event %d: missing name", i)
		}
		if e.PID == nil || e.TID == nil {
			return nil, fmt.Errorf("event %d (%s): missing pid/tid", i, e.Name)
		}
		pids[*e.PID] = true
		switch e.Ph {
		case "X":
			if e.TS == nil {
				return nil, fmt.Errorf("event %d (%s): span without ts", i, e.Name)
			}
			if *e.TS < 0 || e.Dur < 0 {
				return nil, fmt.Errorf("event %d (%s): negative ts/dur", i, e.Name)
			}
			s.Spans++
			s.TotalDur += e.Dur
			s.ByCat[e.Cat]++
		case "i":
			if e.TS == nil || *e.TS < 0 {
				return nil, fmt.Errorf("event %d (%s): instant without sane ts", i, e.Name)
			}
			s.Instants++
			s.ByCat[e.Cat]++
		case "M":
			s.Metadata++
		default:
			return nil, fmt.Errorf("event %d (%s): unknown phase %q", i, e.Name, e.Ph)
		}
		s.Events++
	}
	s.Processes = len(pids)
	if s.Spans+s.Instants == 0 {
		return nil, fmt.Errorf("trace has no spans or instants")
	}
	return s, nil
}

func (s *Summary) write(w io.Writer) {
	fmt.Fprintf(w, "events    %d\n", s.Events)
	fmt.Fprintf(w, "spans     %d\n", s.Spans)
	fmt.Fprintf(w, "instants  %d\n", s.Instants)
	fmt.Fprintf(w, "processes %d\n", s.Processes)
	fmt.Fprintf(w, "span_us   %d\n", s.TotalDur)
	cats := make([]string, 0, len(s.ByCat))
	for c := range s.ByCat {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		name := c
		if name == "" {
			name = "(none)"
		}
		fmt.Fprintf(w, "cat %-12s %d\n", name, s.ByCat[c])
	}
}

func main() {
	check := flag.Bool("check", false, "validate the trace schema and exit")
	summary := flag.Bool("summary", false, "print per-category span counts")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: obsview [-check|-summary] trace.json")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsview:", err)
		os.Exit(1)
	}
	defer f.Close()
	s, err := Check(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsview:", err)
		os.Exit(1)
	}
	switch {
	case *check:
		fmt.Printf("ok: %d events, %d spans, %d processes\n", s.Events, s.Spans, s.Processes)
	case *summary:
		s.write(os.Stdout)
	default:
		s.write(os.Stdout)
	}
}
