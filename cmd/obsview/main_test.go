package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestCheckValidTraceFromRecorder(t *testing.T) {
	r := obs.New(obs.Config{Label: "obsview-test"})
	r.Span("pipeline", "collect").End()
	r.ShardSpan(1, 3, 0).End()
	r.Mark("fabric", "journal-skip")
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := Check(&buf)
	if err != nil {
		t.Fatalf("Check rejected a recorder trace: %v", err)
	}
	if s.Spans != 2 || s.Instants != 1 || s.Metadata != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Processes != 1 {
		t.Fatalf("processes = %d, want 1", s.Processes)
	}
}

func TestCheckRejections(t *testing.T) {
	cases := map[string]string{
		"not json":          `{"traceEvents": [`,
		"missing array":     `{}`,
		"empty trace":       `{"traceEvents": []}`,
		"unknown phase":     `{"traceEvents": [{"name":"a","ph":"Q","ts":1,"pid":1,"tid":0}]}`,
		"missing name":      `{"traceEvents": [{"ph":"X","ts":1,"pid":1,"tid":0}]}`,
		"missing pid":       `{"traceEvents": [{"name":"a","ph":"X","ts":1,"tid":0}]}`,
		"span without ts":   `{"traceEvents": [{"name":"a","ph":"X","pid":1,"tid":0}]}`,
		"negative duration": `{"traceEvents": [{"name":"a","ph":"X","ts":1,"dur":-5,"pid":1,"tid":0}]}`,
		"metadata only":     `{"traceEvents": [{"name":"process_name","ph":"M","pid":1,"tid":0}]}`,
	}
	for name, raw := range cases {
		if _, err := Check(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: Check accepted invalid trace", name)
		}
	}
}

func TestSummaryOutput(t *testing.T) {
	s := &Summary{Events: 3, Spans: 2, Instants: 1, Processes: 2, TotalDur: 42,
		ByCat: map[string]int{"pipeline": 2, "fabric": 1}}
	var buf bytes.Buffer
	s.write(&buf)
	out := buf.String()
	for _, want := range []string{"spans     2", "processes 2", "cat fabric", "cat pipeline"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary output missing %q:\n%s", want, out)
		}
	}
}
