// Command archid runs the architecture-fingerprinting stage: a model zoo
// of candidate architectures is deployed at a chosen defense level, each
// candidate's HPC footprint is profiled over the concurrent sharded
// pipeline, and the template and kNN attackers recover *which architecture
// is running* from held-out observations — the question (CSI-NN) an
// adversary asks before any input-recovery attack.
//
// Usage:
//
//	archid -dataset mnist [-defense baseline] [-events base]
//	       [-profile-runs 40] [-attack-runs 20] [-k 5] [-workers N]
//	       [-seed 1] [-max-inputs 0] [-nopad] [-json out.json]
//
// All observations derive from -seed via per-shard seed derivation, so any
// -workers value reproduces byte-identical confusion matrices. Under
// -defense constant-time the deployments are envelope-padded (every
// architecture tops up to the zoo-wide footprint envelope) unless -nopad
// is set; the -nopad ablation shows that per-kernel constant time alone
// does not hide the architecture.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro"
	"repro/internal/hpc"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("archid: ")
	var (
		dsName      = flag.String("dataset", "mnist", "dataset: mnist or cifar")
		defName     = flag.String("defense", "baseline", "defense level: baseline, dense-execution, constant-time, noise-injection, padded-envelope")
		events      = flag.String("events", "base", "event set (base, fig2b, extended) or comma-separated event list")
		profileRuns = flag.Int("profile-runs", 40, "profiling observations per architecture (the adversary's training budget)")
		attackRuns  = flag.Int("attack-runs", 20, "held-out observations per architecture the attackers are scored on")
		k           = flag.Int("k", 5, "kNN neighbourhood size")
		workers     = flag.Int("workers", 0, "pipeline workers; 0 = GOMAXPROCS")
		seed        = flag.Int64("seed", 0, "campaign root seed; 0 = scenario seed")
		maxInputs   = flag.Int("max-inputs", 0, "cap on the shared input pool; 0 = all test images")
		noPad       = flag.Bool("nopad", false, "disable constant-time envelope padding (ablation)")
		jsonPath    = flag.String("json", "", "write the result as JSON to this file")
	)
	flag.Parse()

	level, err := repro.ParseDefense(*defName)
	if err != nil {
		log.Fatal(err)
	}
	evs, err := hpc.ParseEventSpec(*events)
	if err != nil {
		log.Fatal(err)
	}
	if *profileRuns < 2 {
		log.Fatalf("-profile-runs %d too small: templates need at least 2 profiling observations per architecture", *profileRuns)
	}
	if *attackRuns < 1 {
		log.Fatalf("-attack-runs %d too small: need at least 1 held-out observation per architecture", *attackRuns)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	s, err := repro.NewScenario(repro.ScenarioConfig{Dataset: repro.Dataset(*dsName), Defense: level})
	if err != nil {
		log.Fatal(err)
	}
	zoo, err := s.ArchZoo()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fingerprinting a %d-architecture zoo on %s inputs at defense %s (%d events)...\n\n",
		zoo.Len(), *dsName, level, len(evs))

	res, err := s.ArchID(ctx, repro.ArchIDConfig{
		Events:      evs,
		ProfileRuns: *profileRuns,
		AttackRuns:  *attackRuns,
		K:           *k,
		Workers:     *workers,
		Seed:        *seed,
		MaxInputs:   *maxInputs,
		NoPad:       *noPad,
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := report.ArchIDSummary(os.Stdout, res); err != nil {
		log.Fatal(err)
	}
	chance := res.ChanceLevel()
	best := res.Attack.Template.Accuracy()
	if res.Attack.KNN.Accuracy() > best {
		best = res.Attack.KNN.Accuracy()
	}
	fmt.Println()
	switch {
	case best > 2*chance:
		fmt.Printf("verdict: architecture exposed — best recovery accuracy %.1f%% is over twice chance (%.1f%%)\n", 100*best, 100*chance)
	case best > chance:
		fmt.Printf("verdict: architecture weakly exposed — best recovery accuracy %.1f%% vs chance %.1f%%\n", 100*best, 100*chance)
	default:
		fmt.Printf("verdict: architecture hidden at this budget — best recovery accuracy %.1f%% vs chance %.1f%%\n", 100*best, 100*chance)
	}
	fmt.Printf("(root seed %d reproduces this result at any -workers value)\n", res.Seed)

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonResult(res)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("result written to %s\n", *jsonPath)
	}
}

// jsonResult flattens an ArchIDResult into a JSON-friendly shape with
// event names instead of internal event ids.
func jsonResult(r *repro.ArchIDResult) map[string]any {
	names := make([]string, len(r.Attack.Events))
	for i, e := range r.Attack.Events {
		names[i] = e.String()
	}
	return map[string]any{
		"name":         r.Attack.Name,
		"seed":         r.Seed,
		"defense":      r.Level.String(),
		"padded":       r.Padded,
		"events":       names,
		"zoo":          r.Specs,
		"profile_runs": r.Attack.ProfileRuns,
		"attack_runs":  r.Attack.AttackRuns,
		"k":            r.Attack.K,
		"chance":       r.ChanceLevel(),
		"template": map[string]any{
			"accuracy": r.Attack.Template.Accuracy(),
			"matrix":   r.Attack.Template.Matrix,
		},
		"knn": map[string]any{
			"accuracy": r.Attack.KNN.Accuracy(),
			"matrix":   r.Attack.KNN.Matrix,
		},
		"layer_evidence": r.Evidence,
	}
}
