// Command archid runs the architecture-fingerprinting stage: a model zoo
// of candidate architectures is deployed at a chosen defense level, each
// candidate's HPC footprint is profiled over the concurrent sharded
// pipeline, and the template and kNN attackers recover *which architecture
// is running* from held-out observations — the question (CSI-NN) an
// adversary asks before any input-recovery attack.
//
// Usage:
//
//	archid -dataset mnist [-defense baseline] [-events base]
//	       [-profile-runs 40] [-attack-runs 20] [-k 5] [-workers N]
//	       [-seed 1] [-max-inputs 0] [-nopad] [-json out.json]
//
// All observations derive from -seed via per-shard seed derivation, so any
// -workers value reproduces byte-identical confusion matrices. Under
// -defense constant-time the deployments are envelope-padded (every
// architecture tops up to the zoo-wide footprint envelope) unless -nopad
// is set; the -nopad ablation shows that per-kernel constant time alone
// does not hide the architecture.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro"
	"repro/internal/archid"
	"repro/internal/hpc"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("archid: ")
	var (
		dsName      = flag.String("dataset", "mnist", "dataset: mnist or cifar")
		defName     = flag.String("defense", "baseline", "defense level: baseline, dense-execution, constant-time, noise-injection, padded-envelope")
		events      = flag.String("events", "base", "event set (base, fig2b, extended) or comma-separated event list")
		profileRuns = flag.Int("profile-runs", 40, "profiling observations per architecture (the adversary's training budget)")
		attackRuns  = flag.Int("attack-runs", 20, "held-out observations per architecture the attackers are scored on")
		k           = flag.Int("k", 5, "kNN neighbourhood size")
		workers     = flag.Int("workers", 0, "pipeline workers; 0 = GOMAXPROCS")
		seed        = flag.Int64("seed", 0, "campaign root seed; 0 = scenario seed")
		maxInputs   = flag.Int("max-inputs", 0, "cap on the shared input pool; 0 = all test images")
		noPad       = flag.Bool("nopad", false, "disable constant-time envelope padding (ablation)")
		jsonPath    = flag.String("json", "", "write the result as JSON to this file")
		tracePath   = flag.String("trace", "", "write a Chrome trace_event timeline of the campaign to this file")
		obsPath     = flag.String("obs", "", "stream telemetry events to this file as JSONL")
	)
	flag.Parse()

	level, err := repro.ParseDefense(*defName)
	if err != nil {
		log.Fatal(err)
	}
	evs, err := hpc.ParseEventSpec(*events)
	if err != nil {
		log.Fatal(err)
	}
	if *profileRuns < 2 {
		log.Fatalf("-profile-runs %d too small: templates need at least 2 profiling observations per architecture", *profileRuns)
	}
	if *attackRuns < 1 {
		log.Fatalf("-attack-runs %d too small: need at least 1 held-out observation per architecture", *attackRuns)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	s, err := repro.NewScenario(repro.ScenarioConfig{Dataset: repro.Dataset(*dsName), Defense: level})
	if err != nil {
		log.Fatal(err)
	}
	zoo, err := s.ArchZoo()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fingerprinting a %d-architecture zoo on %s inputs at defense %s (%d events)...\n\n",
		zoo.Len(), *dsName, level, len(evs))

	rec, obsFinish, err := obs.FileRecorder(*tracePath, *obsPath, "archid")
	if err != nil {
		log.Fatal(err)
	}

	res, err := s.ArchID(ctx, repro.ArchIDConfig{
		Events:      evs,
		ProfileRuns: *profileRuns,
		AttackRuns:  *attackRuns,
		K:           *k,
		Workers:     *workers,
		Seed:        *seed,
		MaxInputs:   *maxInputs,
		NoPad:       *noPad,
		Obs:         rec,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := obsFinish(); err != nil {
		log.Fatal(err)
	}

	if err := report.ArchIDSummary(os.Stdout, res); err != nil {
		log.Fatal(err)
	}
	chance := res.ChanceLevel()
	best := res.Attack.Template.Accuracy()
	if res.Attack.KNN.Accuracy() > best {
		best = res.Attack.KNN.Accuracy()
	}
	fmt.Println()
	switch {
	case best > 2*chance:
		fmt.Printf("verdict: architecture exposed — best recovery accuracy %.1f%% is over twice chance (%.1f%%)\n", 100*best, 100*chance)
	case best > chance:
		fmt.Printf("verdict: architecture weakly exposed — best recovery accuracy %.1f%% vs chance %.1f%%\n", 100*best, 100*chance)
	default:
		fmt.Printf("verdict: architecture hidden at this budget — best recovery accuracy %.1f%% vs chance %.1f%%\n", 100*best, 100*chance)
	}
	fmt.Printf("(root seed %d reproduces this result at any -workers value)\n", res.Seed)

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonResult(res)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("result written to %s\n", *jsonPath)
	}
}

// resultJSON is the wire shape of an ArchIDResult. Fields are declared
// in the alphabetical key order encoding/json gives sorted map keys, so
// the emitted bytes match the map[string]any encoding this replaced;
// the named struct makes the schema explicit and key order a property
// of the type rather than of the encoder's map sort.
type resultJSON struct {
	AttackRuns    int                    `json:"attack_runs"`
	Chance        float64                `json:"chance"`
	Defense       string                 `json:"defense"`
	Events        []string               `json:"events"`
	K             int                    `json:"k"`
	KNN           attackerJSON           `json:"knn"`
	LayerEvidence []archid.LayerEvidence `json:"layer_evidence"`
	Name          string                 `json:"name"`
	Padded        bool                   `json:"padded"`
	ProfileRuns   int                    `json:"profile_runs"`
	Seed          int64                  `json:"seed"`
	Template      attackerJSON           `json:"template"`
	Zoo           []nn.SpecInfo          `json:"zoo"`
}

// attackerJSON is one attacker's accuracy and confusion matrix.
type attackerJSON struct {
	Accuracy float64             `json:"accuracy"`
	Matrix   map[int]map[int]int `json:"matrix"`
}

// jsonResult flattens an ArchIDResult into a JSON-friendly shape with
// event names instead of internal event ids.
func jsonResult(r *repro.ArchIDResult) resultJSON {
	names := make([]string, len(r.Attack.Events))
	for i, e := range r.Attack.Events {
		names[i] = e.String()
	}
	return resultJSON{
		AttackRuns:    r.Attack.AttackRuns,
		Chance:        r.ChanceLevel(),
		Defense:       r.Level.String(),
		Events:        names,
		K:             r.Attack.K,
		KNN:           attackerJSON{Accuracy: r.Attack.KNN.Accuracy(), Matrix: r.Attack.KNN.Matrix},
		LayerEvidence: r.Evidence,
		Name:          r.Attack.Name,
		Padded:        r.Padded,
		ProfileRuns:   r.Attack.ProfileRuns,
		Seed:          r.Seed,
		Template:      attackerJSON{Accuracy: r.Attack.Template.Accuracy(), Matrix: r.Attack.Template.Matrix},
		Zoo:           r.Specs,
	}
}
