package main

// Byte-invariance regression: jsonResult moved from a bare map[string]any
// (flagged by detlint's wiredigest analyzer) to the named resultJSON
// struct, whose field order mirrors the sorted map keys. The emitted
// bytes must be identical.

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro"
	"repro/internal/archid"
	"repro/internal/attack"
	"repro/internal/march"
	"repro/internal/nn"
)

func sampleArchIDResult() *repro.ArchIDResult {
	cm := func(correct int) *attack.ConfusionMatrix {
		return &attack.ConfusionMatrix{
			Classes: []int{0, 1},
			Matrix:  map[int]map[int]int{0: {0: 2}, 1: {0: 1, 1: 1}},
			Total:   4,
			Correct: correct,
		}
	}
	return &repro.ArchIDResult{
		Attack: &attack.Result{
			Name:        "archid/baseline",
			Events:      []march.Event{march.EvInstructions},
			Classes:     []int{0, 1},
			ProfileRuns: 4,
			AttackRuns:  2,
			K:           3,
			Template:    cm(3),
			KNN:         cm(2),
		},
		Specs:    []nn.SpecInfo{{}, {}},
		Evidence: []archid.LayerEvidence{{}},
		Padded:   true,
		Seed:     7,
	}
}

func TestJSONResultBytesMatchLegacyMapEncoding(t *testing.T) {
	r := sampleArchIDResult()
	names := make([]string, len(r.Attack.Events))
	for i, e := range r.Attack.Events {
		names[i] = e.String()
	}
	legacy := map[string]any{
		"name":         r.Attack.Name,
		"seed":         r.Seed,
		"defense":      r.Level.String(),
		"padded":       r.Padded,
		"events":       names,
		"zoo":          r.Specs,
		"profile_runs": r.Attack.ProfileRuns,
		"attack_runs":  r.Attack.AttackRuns,
		"k":            r.Attack.K,
		"chance":       r.ChanceLevel(),
		"template": map[string]any{
			"accuracy": r.Attack.Template.Accuracy(),
			"matrix":   r.Attack.Template.Matrix,
		},
		"knn": map[string]any{
			"accuracy": r.Attack.KNN.Accuracy(),
			"matrix":   r.Attack.KNN.Matrix,
		},
		"layer_evidence": r.Evidence,
	}
	want, err := json.MarshalIndent(legacy, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(jsonResult(r), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resultJSON bytes drifted from the legacy map encoding.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
