// Command train fits one of the paper's two CNNs on its synthetic dataset
// and writes the trained model to a gob file for reuse by the other tools.
// It builds the scenario through the same repro.NewScenario path the
// evaluation and attack pipelines deploy, so a saved model is exactly the
// network those campaigns would train for the same -seed.
//
// Usage:
//
//	train -dataset mnist -out mnist.gob [-epochs 2] [-seed 1] [-perclass 120]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/dataset"
	"repro/internal/nn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("train: ")
	var (
		dsName   = flag.String("dataset", "mnist", "dataset: mnist or cifar")
		out      = flag.String("out", "", "output model file (gob); empty = train only")
		epochs   = flag.Int("epochs", 2, "SGD epochs")
		seed     = flag.Int64("seed", 1, "random seed (drives dataset generation, weight init and SGD order)")
		perClass = flag.Int("perclass", 120, "training images per class")
		lr       = flag.Float64("lr", 0, "learning rate (0 = per-dataset default)")
	)
	flag.Parse()

	s, err := repro.NewScenario(repro.ScenarioConfig{
		Dataset:       repro.Dataset(*dsName),
		Seed:          *seed,
		PerClassTrain: *perClass,
		PerClassTest:  *perClass / 2,
		Epochs:        *epochs,
		LR:            *lr,
		TrainProgress: func(ep int, loss, acc float64) {
			fmt.Printf("epoch %d: loss %.4f train-acc %.3f\n", ep, loss, acc)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(dataset.Describe(s.Train))
	fmt.Printf("%s: %d parameters\n", s.Arch.Name, s.Net.ParamCount())
	fmt.Printf("test accuracy: %.3f\n", s.TestAccuracy)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := nn.SaveModel(f, s.Arch, s.Net); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("model written to %s\n", *out)
	}
}
