// Command train fits one of the paper's two CNNs on its synthetic dataset
// and writes the trained model to a gob file for reuse by the other tools.
//
// Usage:
//
//	train -dataset mnist -out mnist.gob [-epochs 2] [-seed 1] [-perclass 120]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/dataset"
	"repro/internal/nn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("train: ")
	var (
		dsName   = flag.String("dataset", "mnist", "dataset: mnist or cifar")
		out      = flag.String("out", "", "output model file (gob); empty = train only")
		epochs   = flag.Int("epochs", 2, "SGD epochs")
		seed     = flag.Int64("seed", 1, "random seed")
		perClass = flag.Int("perclass", 120, "training images per class")
		lr       = flag.Float64("lr", 0, "learning rate (0 = per-dataset default)")
	)
	flag.Parse()

	var (
		arch nn.Arch
		gen  func(dataset.Config) (*dataset.Set, *dataset.Set, error)
	)
	switch *dsName {
	case "mnist":
		arch = nn.MNISTArch()
		gen = dataset.MNISTLike
		if *lr == 0 {
			*lr = 0.05
		}
	case "cifar":
		arch = nn.CIFARArch()
		gen = dataset.CIFARLike
		if *lr == 0 {
			*lr = 0.01
		}
	default:
		log.Fatalf("unknown dataset %q (want mnist or cifar)", *dsName)
	}

	train, test, err := gen(dataset.Config{PerClassTrain: *perClass, PerClassTest: *perClass / 2, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(dataset.Describe(train))

	net, err := nn.Build(arch, rand.New(rand.NewSource(*seed+1)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d parameters\n", arch.Name, net.ParamCount())
	err = nn.Train(net, train.Inputs(), train.Labels(), nn.TrainConfig{
		Epochs: *epochs, BatchSize: 16, LR: *lr, Momentum: 0.9, Seed: *seed + 2,
		Progress: func(ep int, loss, acc float64) {
			fmt.Printf("epoch %d: loss %.4f train-acc %.3f\n", ep, loss, acc)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	acc, err := nn.Accuracy(net, test.Inputs(), test.Labels())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test accuracy: %.3f\n", acc)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := nn.SaveModel(f, arch, net); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("model written to %s\n", *out)
	}
}
