package repro

// Sweep evaluates a grid of leakage-assessment campaigns — trace budgets ×
// event sets × defenses (× datasets) — the workload practical assessment
// needs: how many traces does the Evaluator need before an alarm fires,
// which events leak, and which hardening level silences them. One scenario
// is trained per dataset and shared across the grid; each cell runs on the
// concurrent sharded pipeline with seeds derived from (root seed, cell
// index), so the grid is reproducible cell-for-cell regardless of how many
// cells or workers run in parallel.

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hpc"
	"repro/internal/march"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// SweepConfig describes the grid. Zero-value fields default to the paper's
// headline campaign (MNIST, all defenses, base events, 100/200/300 traces).
type SweepConfig struct {
	Datasets     []Dataset
	Defenses     []DefenseLevel
	TraceBudgets []int
	// EventSets are hpc.ParseEventSpec inputs (named sets or comma lists).
	// Sets larger than the HPC register count are split into
	// register-sized campaign groups, exactly as a real perf user must.
	EventSets []string
	Classes   []int
	Alpha     float64
	// Workers is the per-cell pipeline worker count; 0 → GOMAXPROCS.
	Workers int
	// Processes distributes each cell's shard execution over that many
	// shardworker OS processes through the distributed audit fabric;
	// 0 keeps execution in-process. Cell results are byte-identical
	// either way.
	Processes int
	// Fabric configures the fabric when Processes ≥ 1.
	Fabric FabricConfig
	// Batch groups each cell's measured runs into batched replay sessions
	// of this size (core.Config.Batch); cell results are byte-identical
	// at any value. Default 1.
	Batch int
	// CellParallel bounds how many grid cells evaluate concurrently;
	// 0 → 2. Cell results are independent of this.
	CellParallel int
	// Seed is the sweep root seed; every cell derives its own root from
	// (Seed, cell index). 0 → 1.
	Seed int64
	// Attack additionally runs the end-to-end attack stage per cell: the
	// attackers profile with the cell's trace budget, are scored on
	// AttackRuns held-out observations, and the cell reports
	// template/kNN recovery accuracy next to the leakage verdict.
	Attack bool
	// AttackRuns is the held-out attack observations per class when Attack
	// is set; 0 derives half the cell's trace budget (minimum 10).
	AttackRuns int
	// ArchID additionally runs the architecture-fingerprinting stage per
	// cell: the default zoo is deployed at the cell's defense level, the
	// attackers profile with the cell's trace budget per architecture, and
	// the cell reports architecture-recovery accuracy next to the
	// input-recovery columns — the same defenses scored on a different
	// secret (the model, not the input).
	ArchID bool
	// ArchIDRuns is the held-out fingerprinting observations per
	// architecture when ArchID is set; 0 derives half the cell's trace
	// budget (minimum 10).
	ArchIDRuns int
	// Topo additionally runs the topology-recovery stage per cell:
	// attacker models are trained on a random zoo, a disjoint held-out
	// zoo is reconstructed layer-by-layer at the cell's defense level,
	// and the cell reports exact-layer-count and kind-recovery rates —
	// the full reverse-engineering capability scored against the same
	// defense grid.
	Topo bool
	// TopoHoldout is the held-out victim count when Topo is set; 0 uses
	// the topo default.
	TopoHoldout int
	// Scenario is the template for per-dataset scenario construction
	// (Dataset and Defense are overridden per grid point).
	Scenario ScenarioConfig
	// Obs, when non-nil, records telemetry for every cell's campaigns and
	// supplies the sweep's wall clock (a nil recorder falls back to the
	// system clock, so WallMS is always populated). Observational output
	// only — cell results are byte-identical with or without it.
	Obs *obs.Recorder
}

func (c SweepConfig) withDefaults() SweepConfig {
	if len(c.Datasets) == 0 {
		c.Datasets = []Dataset{DatasetMNIST}
	}
	if len(c.Defenses) == 0 {
		c.Defenses = []DefenseLevel{DefenseBaseline, DefenseDense, DefenseConstantTime, DefenseNoiseInjection}
	}
	if len(c.TraceBudgets) == 0 {
		c.TraceBudgets = []int{100, 200, 300}
	}
	if len(c.EventSets) == 0 {
		c.EventSets = []string{"base"}
	}
	if len(c.Classes) == 0 {
		c.Classes = PaperClasses()
	}
	if c.CellParallel <= 0 {
		c.CellParallel = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// SweepResult is one evaluated grid cell.
type SweepResult struct {
	Dataset  string  `json:"dataset"`
	Defense  string  `json:"defense"`
	Runs     int     `json:"runs"`
	EventSet string  `json:"events"`
	Events   int     `json:"event_count"`
	Tests    int     `json:"tests"`
	Alarms   int     `json:"alarms"`
	Leaky    bool    `json:"leaky"`
	MinP     float64 `json:"min_p"`
	MaxAbsT  float64 `json:"max_abs_t"`
	// Attack-stage columns: recovery accuracy of the Gaussian template and
	// kNN attackers over AttackRuns held-out observations per class. A
	// zero AttackRuns means the stage was not run and the accuracies are
	// meaningless (they stay in the JSON so a genuine 0% recovery is never
	// confused with stage-not-run; the CSV leaves all three blank instead).
	AttackRuns  int     `json:"attack_runs"`
	TemplateAcc float64 `json:"template_acc"`
	KNNAcc      float64 `json:"knn_acc"`
	// ArchID-stage columns: architecture-recovery accuracy of both
	// attackers over ArchIDRuns held-out observations per architecture
	// (same stage-not-run convention as the attack columns).
	ArchIDRuns        int     `json:"archid_runs"`
	ArchIDTemplateAcc float64 `json:"archid_template_acc"`
	ArchIDKNNAcc      float64 `json:"archid_knn_acc"`
	// Topo-stage columns: layer-count and layer-kind recovery over
	// TopoVictims held-out architectures (same stage-not-run convention:
	// zero victims means the stage did not run and the rates are
	// meaningless; the CSV leaves all three blank).
	TopoVictims   int     `json:"topo_victims"`
	TopoExactRate float64 `json:"topo_exact_rate"`
	TopoKindAcc   float64 `json:"topo_kind_acc"`
	WallMS        int64   `json:"wall_ms"`
}

// SweepGrid is the full sweep output.
type SweepGrid struct {
	Results []SweepResult `json:"results"`
}

// Sweep trains one scenario per dataset, then evaluates every grid cell on
// the concurrent pipeline, up to cfg.CellParallel cells at a time.
func Sweep(ctx context.Context, cfg SweepConfig) (*SweepGrid, error) {
	return SweepProgress(ctx, cfg, nil)
}

// SweepProgress is Sweep with a per-cell completion callback (may be nil);
// progress calls are serialized.
func SweepProgress(ctx context.Context, cfg SweepConfig, progress func(SweepResult)) (*SweepGrid, error) {
	cfg = cfg.withDefaults()

	// Parse every event set up front so a bad spec fails before training.
	eventSets := make([][]march.Event, len(cfg.EventSets))
	for i, spec := range cfg.EventSets {
		evs, err := hpc.ParseEventSpec(spec)
		if err != nil {
			return nil, err
		}
		eventSets[i] = evs
	}

	scenarios := map[Dataset]*Scenario{}
	for _, d := range cfg.Datasets {
		sc := cfg.Scenario
		sc.Dataset = d
		sc.Defense = DefenseBaseline
		if sc.Seed == 0 {
			sc.Seed = cfg.Seed
		}
		s, err := NewScenario(sc)
		if err != nil {
			return nil, fmt.Errorf("sweep: scenario %s: %w", d, err)
		}
		scenarios[d] = s
	}

	type cell struct {
		index   int
		dataset Dataset
		defense DefenseLevel
		runs    int
		spec    string
		events  []march.Event
	}
	var cells []cell
	for _, d := range cfg.Datasets {
		for _, def := range cfg.Defenses {
			for _, runs := range cfg.TraceBudgets {
				for i, spec := range cfg.EventSets {
					cells = append(cells, cell{
						index: len(cells), dataset: d, defense: def,
						runs: runs, spec: spec, events: eventSets[i],
					})
				}
			}
		}
	}

	grid := &SweepGrid{Results: make([]SweepResult, len(cells))}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg         sync.WaitGroup
		errOnce    sync.Once
		firstErr   error
		progressMu sync.Mutex
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	sem := make(chan struct{}, cfg.CellParallel)
	for _, cl := range cells {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			fail(ctx.Err())
		}
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(cl cell) {
			defer wg.Done()
			defer func() { <-sem }()
			// Wall-clock telemetry only: start feeds WallMS, which the
			// digest and goldens exclude. The obs clock is the repo's one
			// sanctioned wall-clock source (system clock when cfg.Obs is
			// nil).
			start := cfg.Obs.Clock().Now()
			rep, err := scenarios[cl.dataset].EvaluateGrouped(ctx, cl.defense, EvalConfig{
				Classes:      cfg.Classes,
				Events:       cl.events,
				RunsPerClass: cl.runs,
				Alpha:        cfg.Alpha,
				Workers:      cfg.Workers,
				Processes:    cfg.Processes,
				Fabric:       cfg.Fabric,
				Batch:        cfg.Batch,
				Seed:         core.DeriveSeed(cfg.Seed, cl.index, 0),
				Obs:          cfg.Obs,
			})
			if err != nil {
				fail(fmt.Errorf("sweep: %s/%s runs=%d events=%s: %w", cl.dataset, cl.defense, cl.runs, cl.spec, err))
				return
			}
			var atk *AttackResult
			if cfg.Attack {
				atkRuns := derivedHoldout(cfg.AttackRuns, cl.runs)
				atk, err = scenarios[cl.dataset].AttackGrouped(ctx, cl.defense, AttackConfig{
					Classes:     cfg.Classes,
					Events:      cl.events,
					ProfileRuns: cl.runs,
					AttackRuns:  atkRuns,
					Workers:     cfg.Workers,
					Processes:   cfg.Processes,
					Fabric:      cfg.Fabric,
					Batch:       cfg.Batch,
					// Domain 3 keeps attack-stage observations disjoint from
					// the cell's evaluation campaign (domain 0 above).
					Seed: core.DeriveSeed(cfg.Seed, cl.index, 3),
					Obs:  cfg.Obs,
				})
				if err != nil {
					fail(fmt.Errorf("sweep attack: %s/%s runs=%d events=%s: %w", cl.dataset, cl.defense, cl.runs, cl.spec, err))
					return
				}
			}
			var arch *ArchIDResult
			if cfg.ArchID {
				archRuns := derivedHoldout(cfg.ArchIDRuns, cl.runs)
				arch, err = scenarios[cl.dataset].ArchIDGrouped(ctx, cl.defense, ArchIDConfig{
					Events:      cl.events,
					ProfileRuns: cl.runs,
					AttackRuns:  archRuns,
					Workers:     cfg.Workers,
					Processes:   cfg.Processes,
					Fabric:      cfg.Fabric,
					// Domain 4 keeps archid observations disjoint from the
					// cell's evaluation (0) and attack (3) campaigns.
					Seed: core.DeriveSeed(cfg.Seed, cl.index, 4),
					Obs:  cfg.Obs,
				})
				if err != nil {
					fail(fmt.Errorf("sweep archid: %s/%s runs=%d events=%s: %w", cl.dataset, cl.defense, cl.runs, cl.spec, err))
					return
				}
			}
			var tp *TopoResult
			if cfg.Topo {
				tp, err = scenarios[cl.dataset].TopoGrouped(ctx, cl.defense, TopoConfig{
					Events:    cl.events,
					Holdout:   cfg.TopoHoldout,
					Runs:      derivedHoldout(0, cl.runs),
					Workers:   cfg.Workers,
					Processes: cfg.Processes,
					Fabric:    cfg.Fabric,
					// Domain 5 keeps topo observations disjoint from the
					// cell's evaluation (0), attack (3) and archid (4)
					// campaigns.
					Seed: core.DeriveSeed(cfg.Seed, cl.index, 5),
					Obs:  cfg.Obs,
				})
				if err != nil {
					fail(fmt.Errorf("sweep topo: %s/%s runs=%d events=%s: %w", cl.dataset, cl.defense, cl.runs, cl.spec, err))
					return
				}
			}
			res := summarize(cl.dataset, cl.defense, cl.runs, cl.spec, len(cl.events), rep, atk, arch, tp, cfg.Obs.Clock().Now().Sub(start))
			grid.Results[cl.index] = res
			if progress != nil {
				progressMu.Lock()
				progress(res)
				progressMu.Unlock()
			}
		}(cl)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	// The deferred cancel has not run yet, so a non-nil error here means
	// the caller's context was cancelled before the grid completed.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return grid, nil
}

// EvaluateGrouped runs a pipeline campaign over an arbitrarily wide event
// list at an explicit defense level. Event sets wider than the HPC
// register file cannot be counted in a single campaign, so they are split
// into register-sized groups, each evaluated as its own pipeline campaign
// (with a group-derived root seed), and the partial reports are merged —
// exactly the multi-session discipline a real perf user must follow.
// cfg.Workers == 0 uses GOMAXPROCS; the grouped path always runs on the
// pipeline.
func (s *Scenario) EvaluateGrouped(ctx context.Context, level DefenseLevel, cfg EvalConfig) (*core.Report, error) {
	if len(cfg.Classes) == 0 {
		cfg.Classes = PaperClasses()
	}
	if cfg.RunsPerClass <= 0 {
		cfg.RunsPerClass = 300
	}
	events := cfg.Events
	if len(events) == 0 {
		events = []Event{EvCacheMisses, EvBranches}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = s.Config.Seed
	}
	factory := s.FactoryFor(level)
	pools, err := s.ClassPools(cfg.Classes...)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("%s/%s", s.Config.Dataset, level)

	var merged *core.Report
	for g := 0; g*hpc.DefaultCounters < len(events); g++ {
		lo := g * hpc.DefaultCounters
		hi := lo + hpc.DefaultCounters
		if hi > len(events) {
			hi = len(events)
		}
		ev, err := core.NewEvaluator(core.Config{
			Events:       events[lo:hi],
			Alpha:        cfg.Alpha,
			RunsPerClass: cfg.RunsPerClass,
			Batch:        cfg.Batch,
			Obs:          cfg.Obs,
		})
		if err != nil {
			return nil, err
		}
		p, err := pipeline.New(ev, pipeline.Config{
			Workers:   cfg.Workers,
			RootSeed:  core.DeriveSeed(seed, g, 1),
			ShardRuns: cfg.ShardRuns,
			Obs:       cfg.Obs,
		})
		if err != nil {
			return nil, err
		}
		var rep *core.Report
		if cfg.Processes > 0 {
			spec := WorkerSpec{
				Stage:        StageReport,
				Scenario:     s.spec(),
				Level:        level.String(),
				Events:       eventNames(events[lo:hi]),
				Session:      g,
				Classes:      cfg.Classes,
				RunsPerClass: cfg.RunsPerClass,
				RootSeed:     core.DeriveSeed(seed, g, 1),
				ShardRuns:    cfg.ShardRuns,
				Batch:        cfg.Batch,
			}
			byClass, err := collectFabric(ctx, p, pools, spec, cfg.Processes, cfg.Fabric)
			if err != nil {
				return nil, err
			}
			rep, err = p.ReportFromProfiles(ctx, name, byClass)
			if err != nil {
				return nil, err
			}
		} else {
			rep, err = p.Evaluate(ctx, name, factory, pools)
			if err != nil {
				return nil, err
			}
		}
		if merged == nil {
			merged = rep
			continue
		}
		merged.Dists.Events = append(merged.Dists.Events, rep.Dists.Events...)
		for e, byClass := range rep.Dists.Samples {
			merged.Dists.Samples[e] = byClass
		}
		merged.Tests = append(merged.Tests, rep.Tests...)
		merged.Alarms = append(merged.Alarms, rep.Alarms...)
	}
	merged.Config.Events = append([]march.Event(nil), events...)
	return merged, nil
}

// derivedHoldout resolves a held-out observation budget for a cell's
// exploitation stages: the configured value, or half the cell's trace
// budget with a 10-run floor — shared by the attack and archid columns so
// the two stages can never silently derive different budgets from the
// same convention.
func derivedHoldout(configured, cellRuns int) int {
	if configured > 0 {
		return configured
	}
	n := cellRuns / 2
	if n < 10 {
		n = 10
	}
	return n
}

func summarize(d Dataset, level DefenseLevel, runs int, spec string, nEvents int, rep *core.Report, atk *AttackResult, arch *ArchIDResult, tp *TopoResult, wall time.Duration) SweepResult {
	res := SweepResult{
		Dataset:  string(d),
		Defense:  level.String(),
		Runs:     runs,
		EventSet: spec,
		Events:   nEvents,
		Tests:    len(rep.Tests),
		Alarms:   len(rep.Alarms),
		Leaky:    rep.Leaky(),
		MinP:     1,
		WallMS:   wall.Milliseconds(),
	}
	for _, t := range rep.Tests {
		if t.Result.P < res.MinP {
			res.MinP = t.Result.P
		}
		at := t.Result.T
		if at < 0 {
			at = -at
		}
		if at > res.MaxAbsT {
			res.MaxAbsT = at
		}
	}
	if atk != nil {
		res.AttackRuns = atk.AttackRuns
		res.TemplateAcc = atk.Template.Accuracy()
		res.KNNAcc = atk.KNN.Accuracy()
	}
	if arch != nil {
		res.ArchIDRuns = arch.Attack.AttackRuns
		res.ArchIDTemplateAcc = arch.Attack.Template.Accuracy()
		res.ArchIDKNNAcc = arch.Attack.KNN.Accuracy()
	}
	if tp != nil {
		res.TopoVictims = len(tp.Victims)
		res.TopoExactRate = tp.ExactCountRate
		res.TopoKindAcc = tp.MeanKindAccuracy
	}
	return res
}

// WriteCSV emits the grid as a CSV table.
func (g *SweepGrid) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "defense", "runs", "events", "event_count", "tests", "alarms", "leaky", "min_p", "max_abs_t", "attack_runs", "template_acc", "knn_acc", "archid_runs", "archid_template_acc", "archid_knn_acc", "topo_victims", "topo_exact_rate", "topo_kind_acc", "wall_ms"}); err != nil {
		return err
	}
	for _, r := range g.Results {
		attackRuns, templateAcc, knnAcc := "", "", ""
		if r.AttackRuns > 0 {
			attackRuns = strconv.Itoa(r.AttackRuns)
			templateAcc = strconv.FormatFloat(r.TemplateAcc, 'g', 6, 64)
			knnAcc = strconv.FormatFloat(r.KNNAcc, 'g', 6, 64)
		}
		archidRuns, archidTemplateAcc, archidKNNAcc := "", "", ""
		if r.ArchIDRuns > 0 {
			archidRuns = strconv.Itoa(r.ArchIDRuns)
			archidTemplateAcc = strconv.FormatFloat(r.ArchIDTemplateAcc, 'g', 6, 64)
			archidKNNAcc = strconv.FormatFloat(r.ArchIDKNNAcc, 'g', 6, 64)
		}
		topoVictims, topoExactRate, topoKindAcc := "", "", ""
		if r.TopoVictims > 0 {
			topoVictims = strconv.Itoa(r.TopoVictims)
			topoExactRate = strconv.FormatFloat(r.TopoExactRate, 'g', 6, 64)
			topoKindAcc = strconv.FormatFloat(r.TopoKindAcc, 'g', 6, 64)
		}
		rec := []string{
			r.Dataset, r.Defense, strconv.Itoa(r.Runs), r.EventSet,
			strconv.Itoa(r.Events), strconv.Itoa(r.Tests), strconv.Itoa(r.Alarms),
			strconv.FormatBool(r.Leaky),
			strconv.FormatFloat(r.MinP, 'g', 6, 64),
			strconv.FormatFloat(r.MaxAbsT, 'g', 6, 64),
			attackRuns, templateAcc, knnAcc,
			archidRuns, archidTemplateAcc, archidKNNAcc,
			topoVictims, topoExactRate, topoKindAcc,
			strconv.FormatInt(r.WallMS, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the grid as indented JSON.
func (g *SweepGrid) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}
