package repro

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// smallSweepConfig keeps the grid cheap: a weakly-trained scenario, two
// defenses, two budgets, one event set.
func smallSweepConfig() SweepConfig {
	return SweepConfig{
		Datasets:     []Dataset{DatasetMNIST},
		Defenses:     []DefenseLevel{DefenseBaseline, DefenseConstantTime},
		TraceBudgets: []int{8, 12},
		EventSets:    []string{"base"},
		Classes:      []int{1, 2},
		Workers:      2,
		CellParallel: 2,
		Seed:         3,
		Scenario: ScenarioConfig{
			PerClassTrain: 20,
			PerClassTest:  10,
			Epochs:        1,
			Seed:          5,
		},
	}
}

func TestSweepGridShape(t *testing.T) {
	var seen []SweepResult
	grid, err := SweepProgress(context.Background(), smallSweepConfig(), func(r SweepResult) {
		seen = append(seen, r)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Results) != 4 { // 2 defenses × 2 budgets
		t.Fatalf("grid has %d cells, want 4", len(grid.Results))
	}
	if len(seen) != 4 {
		t.Fatalf("progress reported %d cells, want 4", len(seen))
	}
	for i, r := range grid.Results {
		if r.Dataset != "mnist" || r.Tests != 2 { // 1 pair × 2 events
			t.Fatalf("cell %d malformed: %+v", i, r)
		}
		if r.MinP < 0 || r.MinP > 1 {
			t.Fatalf("cell %d: min_p %v outside [0,1]", i, r.MinP)
		}
		if r.Leaky != (r.Alarms > 0) {
			t.Fatalf("cell %d: leaky=%v with %d alarms", i, r.Leaky, r.Alarms)
		}
	}
	// Grid order is deterministic: defense-major, then budget.
	if grid.Results[0].Defense != "baseline" || grid.Results[0].Runs != 8 ||
		grid.Results[3].Defense != "constant-time" || grid.Results[3].Runs != 12 {
		t.Fatalf("grid order wrong: %+v", grid.Results)
	}

	var csv strings.Builder
	if err := grid.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 5 || !strings.HasPrefix(lines[0], "dataset,defense,runs,events") {
		t.Fatalf("CSV malformed:\n%s", csv.String())
	}

	var js strings.Builder
	if err := grid.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded SweepGrid
	if err := json.Unmarshal([]byte(js.String()), &decoded); err != nil {
		t.Fatalf("JSON does not round-trip: %v", err)
	}
	if len(decoded.Results) != 4 {
		t.Fatalf("JSON decoded %d cells, want 4", len(decoded.Results))
	}
}

// TestSweepDeterministicAcrossParallelism: cell results must not depend on
// how many cells or workers run concurrently.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	a := smallSweepConfig()
	b := smallSweepConfig()
	b.CellParallel = 1
	b.Workers = 1
	ga, err := Sweep(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := Sweep(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ga.Results {
		ra, rb := ga.Results[i], gb.Results[i]
		ra.WallMS, rb.WallMS = 0, 0
		if ra != rb {
			t.Fatalf("cell %d differs across parallelism:\n  %+v\n  %+v", i, ra, rb)
		}
	}
}

func TestSweepCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Sweep(ctx, smallSweepConfig()); err == nil {
		t.Fatal("cancelled sweep returned no error")
	}
}

func TestSweepBadEventSet(t *testing.T) {
	cfg := smallSweepConfig()
	cfg.EventSets = []string{"no-such-event"}
	if _, err := Sweep(context.Background(), cfg); err == nil {
		t.Fatal("bad event spec accepted")
	}
}

func TestParseDefense(t *testing.T) {
	for _, l := range []DefenseLevel{DefenseBaseline, DefenseDense, DefenseConstantTime, DefenseNoiseInjection} {
		got, err := ParseDefense(l.String())
		if err != nil || got != l {
			t.Fatalf("ParseDefense(%q) = %v, %v", l.String(), got, err)
		}
	}
	if _, err := ParseDefense("bogus"); err == nil {
		t.Fatal("unknown defense accepted")
	}
}

// TestEvaluateGroupedWideEventSet: an event set wider than the register
// file must split into register-sized campaign groups and still cover
// every event with the full pair-test matrix.
func TestEvaluateGroupedWideEventSet(t *testing.T) {
	s, err := NewScenario(ScenarioConfig{
		Dataset:       DatasetMNIST,
		PerClassTrain: 20,
		PerClassTest:  10,
		Epochs:        1,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := AllPaperEvents()
	rep, err := s.EvaluateGrouped(context.Background(), DefenseBaseline, EvalConfig{
		Classes:      []int{1, 2},
		Events:       events,
		RunsPerClass: 6,
		Workers:      2,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tests) != len(events) { // 1 pair × 8 events
		t.Fatalf("tests = %d, want %d", len(rep.Tests), len(events))
	}
	for _, e := range events {
		if got := len(rep.Dists.Get(e, 1)); got != 6 {
			t.Fatalf("event %s has %d samples, want 6", e, got)
		}
	}
}
