package repro

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// smallSweepConfig keeps the grid cheap: a weakly-trained scenario, two
// defenses, two budgets, one event set.
func smallSweepConfig() SweepConfig {
	return SweepConfig{
		Datasets:     []Dataset{DatasetMNIST},
		Defenses:     []DefenseLevel{DefenseBaseline, DefenseConstantTime},
		TraceBudgets: []int{8, 12},
		EventSets:    []string{"base"},
		Classes:      []int{1, 2},
		Workers:      2,
		CellParallel: 2,
		Seed:         3,
		Attack:       true,
		ArchID:       true,
		Topo:         true,
		TopoHoldout:  4,
		Scenario: ScenarioConfig{
			PerClassTrain: 20,
			PerClassTest:  10,
			Epochs:        1,
			Seed:          5,
		},
	}
}

func TestSweepGridShape(t *testing.T) {
	var seen []SweepResult
	grid, err := SweepProgress(context.Background(), smallSweepConfig(), func(r SweepResult) {
		seen = append(seen, r)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Results) != 4 { // 2 defenses × 2 budgets
		t.Fatalf("grid has %d cells, want 4", len(grid.Results))
	}
	if len(seen) != 4 {
		t.Fatalf("progress reported %d cells, want 4", len(seen))
	}
	for i, r := range grid.Results {
		if r.Dataset != "mnist" || r.Tests != 2 { // 1 pair × 2 events
			t.Fatalf("cell %d malformed: %+v", i, r)
		}
		if r.MinP < 0 || r.MinP > 1 {
			t.Fatalf("cell %d: min_p %v outside [0,1]", i, r.MinP)
		}
		if r.Leaky != (r.Alarms > 0) {
			t.Fatalf("cell %d: leaky=%v with %d alarms", i, r.Leaky, r.Alarms)
		}
		// Attack-stage columns: budget/2 clamps to the 10-run minimum here.
		if r.AttackRuns != 10 {
			t.Fatalf("cell %d: attack_runs %d, want 10", i, r.AttackRuns)
		}
		if r.TemplateAcc < 0 || r.TemplateAcc > 1 || r.KNNAcc < 0 || r.KNNAcc > 1 {
			t.Fatalf("cell %d: accuracies outside [0,1]: %+v", i, r)
		}
		// ArchID-stage columns follow the same budget derivation.
		if r.ArchIDRuns != 10 {
			t.Fatalf("cell %d: archid_runs %d, want 10", i, r.ArchIDRuns)
		}
		if r.ArchIDTemplateAcc < 0 || r.ArchIDTemplateAcc > 1 || r.ArchIDKNNAcc < 0 || r.ArchIDKNNAcc > 1 {
			t.Fatalf("cell %d: archid accuracies outside [0,1]: %+v", i, r)
		}
		// Topo-stage columns: the held-out victim count is the configured
		// one, and the recovery rates are well-formed probabilities.
		if r.TopoVictims != 4 {
			t.Fatalf("cell %d: topo_victims %d, want 4", i, r.TopoVictims)
		}
		if r.TopoExactRate < 0 || r.TopoExactRate > 1 || r.TopoKindAcc < 0 || r.TopoKindAcc > 1 {
			t.Fatalf("cell %d: topo rates outside [0,1]: %+v", i, r)
		}
		// The defense levels score differently on the model secret: the
		// baseline cells fingerprint the architecture nearly perfectly,
		// the (envelope-padded) constant-time cells sit near the 1/7
		// chance level.
		const chance = 1.0 / 7
		switch r.Defense {
		case "baseline":
			if r.ArchIDTemplateAcc < 3*chance {
				t.Fatalf("cell %d: baseline archid recovery %.3f below 3x chance", i, r.ArchIDTemplateAcc)
			}
		case "constant-time":
			if r.ArchIDTemplateAcc > 2.5*chance {
				t.Fatalf("cell %d: padded constant-time archid recovery %.3f above 2.5x chance", i, r.ArchIDTemplateAcc)
			}
		}
	}
	// Grid order is deterministic: defense-major, then budget.
	if grid.Results[0].Defense != "baseline" || grid.Results[0].Runs != 8 ||
		grid.Results[3].Defense != "constant-time" || grid.Results[3].Runs != 12 {
		t.Fatalf("grid order wrong: %+v", grid.Results)
	}

	var csv strings.Builder
	if err := grid.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 5 || !strings.HasPrefix(lines[0], "dataset,defense,runs,events") {
		t.Fatalf("CSV malformed:\n%s", csv.String())
	}
	if !strings.Contains(lines[0], "template_acc,knn_acc") {
		t.Fatalf("CSV header missing attack accuracy columns:\n%s", lines[0])
	}
	if !strings.Contains(lines[0], "archid_runs,archid_template_acc,archid_knn_acc") {
		t.Fatalf("CSV header missing archid columns:\n%s", lines[0])
	}
	if !strings.Contains(lines[0], "topo_victims,topo_exact_rate,topo_kind_acc") {
		t.Fatalf("CSV header missing topo columns:\n%s", lines[0])
	}

	var js strings.Builder
	if err := grid.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded SweepGrid
	if err := json.Unmarshal([]byte(js.String()), &decoded); err != nil {
		t.Fatalf("JSON does not round-trip: %v", err)
	}
	if len(decoded.Results) != 4 {
		t.Fatalf("JSON decoded %d cells, want 4", len(decoded.Results))
	}
}

// TestSweepCSVAttackColumnsEmptyWhenDisabled: grids evaluated without the
// attack or archid stages must leave those accuracy columns blank, not
// report 0%.
func TestSweepCSVAttackColumnsEmptyWhenDisabled(t *testing.T) {
	g := &SweepGrid{Results: []SweepResult{
		{Dataset: "mnist", Defense: "baseline", Runs: 10, EventSet: "base", MinP: 1},
		{Dataset: "mnist", Defense: "baseline", Runs: 10, EventSet: "base", MinP: 1, AttackRuns: 10, TemplateAcc: 0.5, KNNAcc: 0.25},
		{Dataset: "mnist", Defense: "baseline", Runs: 10, EventSet: "base", MinP: 1,
			AttackRuns: 10, TemplateAcc: 0.5, KNNAcc: 0.25,
			ArchIDRuns: 12, ArchIDTemplateAcc: 0.875, ArchIDKNNAcc: 0.75,
			TopoVictims: 5, TopoExactRate: 1, TopoKindAcc: 0.9375},
	}}
	var b strings.Builder
	if err := g.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if !strings.Contains(lines[1], ",,,,,,") {
		t.Fatalf("disabled stages should leave blank columns: %s", lines[1])
	}
	if !strings.Contains(lines[2], ",10,0.5,0.25,,,,,,,") {
		t.Fatalf("attack-only row should fill attack columns and leave archid/topo blank: %s", lines[2])
	}
	if !strings.Contains(lines[3], ",10,0.5,0.25,12,0.875,0.75,5,1,0.9375,") {
		t.Fatalf("all stages enabled should fill all columns: %s", lines[3])
	}
}

// TestSweepDeterministicAcrossParallelism: cell results — including the
// attack-stage accuracy columns — must not depend on how many cells or
// workers run concurrently.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	a := smallSweepConfig()
	b := smallSweepConfig()
	b.CellParallel = 1
	b.Workers = 1
	ga, err := Sweep(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := Sweep(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ga.Results {
		ra, rb := ga.Results[i], gb.Results[i]
		ra.WallMS, rb.WallMS = 0, 0
		if ra != rb {
			t.Fatalf("cell %d differs across parallelism:\n  %+v\n  %+v", i, ra, rb)
		}
	}
}

func TestSweepCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Sweep(ctx, smallSweepConfig()); err == nil {
		t.Fatal("cancelled sweep returned no error")
	}
}

func TestSweepBadEventSet(t *testing.T) {
	cfg := smallSweepConfig()
	cfg.EventSets = []string{"no-such-event"}
	if _, err := Sweep(context.Background(), cfg); err == nil {
		t.Fatal("bad event spec accepted")
	}
}

func TestParseClasses(t *testing.T) {
	got, err := ParseClasses(" 1, 2,3 ")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("ParseClasses = %v, %v", got, err)
	}
	if _, err := ParseClasses("1,x"); err == nil {
		t.Fatal("bad class list accepted")
	}
}

func TestParseDefense(t *testing.T) {
	for _, l := range AllDefenses() {
		got, err := ParseDefense(l.String())
		if err != nil || got != l {
			t.Fatalf("ParseDefense(%q) = %v, %v", l.String(), got, err)
		}
	}
	if _, err := ParseDefense("bogus"); err == nil {
		t.Fatal("unknown defense accepted")
	}
}

// TestEvaluateGroupedWideEventSet: an event set wider than the register
// file must split into register-sized campaign groups and still cover
// every event with the full pair-test matrix.
func TestEvaluateGroupedWideEventSet(t *testing.T) {
	s, err := NewScenario(ScenarioConfig{
		Dataset:       DatasetMNIST,
		PerClassTrain: 20,
		PerClassTest:  10,
		Epochs:        1,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := AllPaperEvents()
	rep, err := s.EvaluateGrouped(context.Background(), DefenseBaseline, EvalConfig{
		Classes:      []int{1, 2},
		Events:       events,
		RunsPerClass: 6,
		Workers:      2,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tests) != len(events) { // 1 pair × 8 events
		t.Fatalf("tests = %d, want %d", len(rep.Tests), len(events))
	}
	for _, e := range events {
		if got := len(rep.Dists.Get(e, 1)); got != 6 {
			t.Fatalf("event %s has %d samples, want 6", e, got)
		}
	}
}
